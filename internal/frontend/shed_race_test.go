package frontend

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestShedPathConcurrentDeadlines hammers the batcher and admission
// queue with concurrent submitters whose budgets expire while they sit
// in the queue — the shed paths (queue full, budget short at admission,
// deadline dead at dispatch) all fire while batches execute. Run under
// -race in CI, it is the concurrency sweep PR 1's tests left uncovered:
// every Submit must return exactly once (scores or an ErrShed-wrapped
// rejection, never a hang), and the counters must reconcile with what
// callers observed.
func TestShedPathConcurrentDeadlines(t *testing.T) {
	exec := &fakeExec{delay: 2 * time.Millisecond}
	f := New(exec, Config{
		MaxBatchRequests: 4,
		MaxQueue:         8,
		BatchWait:        500 * time.Microsecond,
		// A budget narrower than the executor delay: once the estimator
		// learns the per-item cost, admission control starts shedding, and
		// queued requests routinely die of deadline at dispatch.
		Budget: 3 * time.Millisecond,
	})
	defer f.Close()

	const workers = 8
	const perWorker = 60
	var served, shed, failed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := uint64(w*perWorker + i + 1)
				scores, err := f.Submit(trace.Context{TraceID: id}, fakeReq(id))
				switch {
				case err == nil:
					if len(scores) != 1 || scores[0] != float32(id) {
						t.Errorf("request %d got wrong scores %v", id, scores)
						return
					}
					served.Add(1)
				case errors.Is(err, ErrShed):
					shed.Add(1)
				default:
					failed.Add(1)
					t.Errorf("request %d: non-shed error %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	total := served.Load() + shed.Load() + failed.Load()
	if total != workers*perWorker {
		t.Fatalf("submits lost: %d of %d returned", total, workers*perWorker)
	}
	st := f.Stats()
	if st.Completed != uint64(served.Load()) {
		t.Fatalf("stats completed %d, callers saw %d", st.Completed, served.Load())
	}
	if st.Sheds() != uint64(shed.Load()) {
		t.Fatalf("stats sheds %d (%+v), callers saw %d", st.Sheds(), st, shed.Load())
	}
	// Admission accounting closes: everything admitted to the queue was
	// either completed or shed at dispatch; everything else was shed at
	// admission.
	if st.Submitted != st.Completed+st.ShedDeadline {
		t.Fatalf("admitted %d != completed %d + deadline-shed %d", st.Submitted, st.Completed, st.ShedDeadline)
	}
	if st.ShedQueueFull+st.ShedBudget+st.Submitted != uint64(workers*perWorker) {
		t.Fatalf("admission accounting leaks: %+v", st)
	}
	// Under a budget this tight both regimes must actually occur — a
	// test where nothing sheds (or nothing completes) proves nothing.
	if shed.Load() == 0 {
		t.Fatal("no request was shed under an impossible budget")
	}
	if served.Load() == 0 {
		t.Fatal("no request completed; probes should keep the pipeline alive")
	}
}

// TestShedPathCloseDuringStorm pins Submit/Close ordering: closing the
// frontend while submitters are in flight must drain cleanly — every
// in-flight Submit returns (served, shed, or ErrClosed), none hang.
func TestShedPathCloseDuringStorm(t *testing.T) {
	exec := &fakeExec{delay: time.Millisecond}
	f := New(exec, Config{MaxQueue: 4, Budget: 2 * time.Millisecond})

	var wg sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				id := uint64(w*1000 + i + 1)
				_, err := f.Submit(trace.Context{TraceID: id}, fakeReq(id))
				if err != nil && !errors.Is(err, ErrShed) && !errors.Is(err, ErrClosed) {
					t.Errorf("unexpected error %v", err)
					return
				}
				if errors.Is(err, ErrClosed) {
					return
				}
			}
		}(w)
	}
	time.Sleep(5 * time.Millisecond)
	f.Close()
	close(done)
	wg.Wait() // a hang here is the failure mode
}
