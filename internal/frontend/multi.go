package frontend

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/trace"
)

// Multi hosts one Frontend per co-served model behind a shared drain
// gate: model-keyed queues (each tenant keeps its own bounded admission
// queue, SLA budget, and estimator) with weighted drain (the gate meters
// each tenant's execution bandwidth to its capacity entitlement), so one
// tenant's backlog can neither occupy another's queue nor starve its
// executor share.
//
// Entitlements are expressed in capacity units (sparse replica-servers
// in the fleet): a tenant holding u of the fleet's C units may use u/C
// of the execution bandwidth. See drainGate for why unused entitlement
// is not redistributed.
type Multi struct {
	gate *drainGate

	mu       sync.Mutex
	tenants  map[string]*Frontend
	units    map[string]float64
	capacity float64
}

// NewMulti builds an empty multi-tenant frontend. capacity is the
// fleet's total capacity in units; burst bounds how much idle
// entitlement a tenant may bank (0 = default).
func NewMulti(capacity float64, burst time.Duration) *Multi {
	if capacity <= 0 {
		capacity = 1
	}
	return &Multi{
		gate:     newDrainGate(burst),
		tenants:  make(map[string]*Frontend),
		units:    make(map[string]float64),
		capacity: capacity,
	}
}

// Add starts a Frontend for model name over exec, entitled to units of
// the fleet's capacity. cfg carries the tenant's own SLA budget, queue
// bound, and (typically per-model labeled) obs registry.
func (m *Multi) Add(name string, exec Executor, cfg Config, units float64) (*Frontend, error) {
	if name == "" {
		return nil, fmt.Errorf("frontend: tenant name must be non-empty")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.tenants[name]; dup {
		return nil, fmt.Errorf("frontend: duplicate tenant %q", name)
	}
	m.gate.add(name, units/m.capacity)
	cfg.gate = m.gate
	cfg.tenant = name
	f := New(exec, cfg)
	m.tenants[name] = f
	m.units[name] = units
	return f, nil
}

// Tenant returns model name's frontend, or nil.
func (m *Multi) Tenant(name string) *Frontend {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tenants[name]
}

// Names lists the tenants in sorted order.
func (m *Multi) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.tenants))
	for name := range m.tenants {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SetUnits re-prices tenant name's entitlement — the hook the elastic
// scheduler calls when it grows or shrinks a model's replica set.
func (m *Multi) SetUnits(name string, units float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.units[name]; !ok {
		return
	}
	m.units[name] = units
	m.gate.setShare(name, units/m.capacity)
}

// Units reports tenant name's current entitlement.
func (m *Multi) Units(name string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.units[name]
}

// Submit routes one request to model name's frontend.
func (m *Multi) Submit(name string, ctx trace.Context, req *core.RankingRequest) ([]float32, error) {
	f := m.Tenant(name)
	if f == nil {
		return nil, fmt.Errorf("frontend: unknown model %q", name)
	}
	return f.Submit(ctx, req)
}

// Close drains and stops every tenant frontend.
func (m *Multi) Close() {
	m.mu.Lock()
	tenants := make([]*Frontend, 0, len(m.tenants))
	for _, f := range m.tenants {
		tenants = append(tenants, f)
	}
	m.mu.Unlock()
	for _, f := range tenants {
		f.Close()
	}
}

// MultiService adapts a Multi to rpc.Handler: "rank@<model>" routes to
// that model's frontend; bare "rank" is accepted only when exactly one
// tenant is hosted (so single-model tooling keeps working against a
// co-serving front door).
type MultiService struct {
	M   *Multi
	Rec *trace.Recorder
}

// Handle implements rpc.Handler.
func (s *MultiService) Handle(ctx trace.Context, method string, body []byte) ([]byte, error) {
	model, ok := core.SplitRankMethod(method)
	if !ok {
		return nil, fmt.Errorf("frontend: unknown method %q", method)
	}
	if model == "" {
		names := s.M.Names()
		if len(names) != 1 {
			return nil, fmt.Errorf("frontend: method %q is ambiguous across %d models; use %q",
				method, len(names), core.RankMethodFor("<model>"))
		}
		model = names[0]
	}
	f := s.M.Tenant(model)
	if f == nil {
		return nil, fmt.Errorf("frontend: unknown model %q", model)
	}
	return core.HandleRank(s.Rec, ctx, core.RankMethod, body, f.Submit)
}

var _ rpc.Handler = (*MultiService)(nil)
