package frontend

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// push enqueues a request directly on the dispatcher queue (bypassing
// Submit) so tests control arrival order exactly.
func push(f *Frontend, id uint64, items int32) *pending {
	p := &pending{
		item: core.BatchItem{Ctx: trace.Context{TraceID: id}, Req: &core.RankingRequest{ID: id, Items: items}},
		done: make(chan struct{}),
	}
	f.queue <- p
	return p
}

func waitDone(t *testing.T, ps ...*pending) {
	t.Helper()
	for _, p := range ps {
		select {
		case <-p.done:
		case <-time.After(5 * time.Second):
			t.Fatal("request not served")
		}
	}
}

func waitEntered(t *testing.T, exec *fakeExec) {
	t.Helper()
	select {
	case <-exec.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("executor never entered")
	}
}

// TestGatherStopsAtItemCapCrossing is the item-cap clamp regression, in
// both gather modes (windowed and pure drain): the arrival that crosses
// MaxBatchItems must end the batch — requests queued behind it belong
// to the next execution, and the overshoot is bounded to that single
// arrival.
func TestGatherStopsAtItemCapCrossing(t *testing.T) {
	for _, wait := range []time.Duration{0, 100 * time.Millisecond} {
		t.Run(fmt.Sprintf("wait=%v", wait), func(t *testing.T) {
			testGatherClamp(t, wait)
		})
	}
}

func testGatherClamp(t *testing.T, wait time.Duration) {
	exec := &fakeExec{gate: make(chan struct{}, 8), entered: make(chan struct{}, 1)}
	f := New(exec, Config{BatchWait: wait, MaxBatchItems: 8, MaxBatchRequests: 100, MaxQueue: 64})
	defer f.Close()
	defer close(exec.gate)

	// Batch 1: a lone opener; hold it at the executor while the real
	// test traffic queues up in order behind it.
	a := push(f, 1, 1)
	waitEntered(t, exec)
	b := push(f, 2, 3)
	c := push(f, 3, 100) // oversized: crosses the cap on append
	d := push(f, 4, 1)
	e := push(f, 5, 1)
	exec.gate <- struct{}{} // release batch 1
	waitDone(t, a)

	waitEntered(t, exec)
	exec.gate <- struct{}{} // release batch 2
	waitDone(t, b, c)
	waitEntered(t, exec)
	exec.gate <- struct{}{} // release batch 3
	waitDone(t, d, e)

	exec.mu.Lock()
	defer exec.mu.Unlock()
	if len(exec.batches) != 3 {
		t.Fatalf("dispatched %d batches, want 3", len(exec.batches))
	}
	ids := func(items []core.BatchItem) (out []uint64) {
		for _, it := range items {
			out = append(out, it.Req.ID)
		}
		return
	}
	if got := ids(exec.batches[1]); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("batch 2 = %v, want [2 3]: gathering must stop when request 3 crosses the cap", got)
	}
	if got := ids(exec.batches[2]); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Errorf("batch 3 = %v, want [4 5]", got)
	}
}

// TestOversizedOpenerSkipsGatherWindow: a first request already at the
// cap must dispatch immediately instead of idling out the full batch
// window it cannot use.
func TestOversizedOpenerSkipsGatherWindow(t *testing.T) {
	exec := &fakeExec{entered: make(chan struct{}, 1)}
	f := New(exec, Config{BatchWait: 5 * time.Second, MaxBatchItems: 8, MaxQueue: 64})
	defer f.Close()
	p := push(f, 1, 20)
	select {
	case <-exec.entered:
	case <-time.After(time.Second):
		t.Fatal("oversized opener waited on the gather window")
	}
	waitDone(t, p)
}
