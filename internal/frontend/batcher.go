package frontend

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// run is the dispatcher: it gathers queued requests into deadline-bounded
// batches and executes them. One goroutine owns the loop, so while the
// executor runs, new arrivals accumulate in the queue and the next batch
// is naturally larger — the classic adaptive-batching feedback.
//
// The item cap is clamped immediately after every append: the moment an
// arrival crosses MaxBatchItems the batch ends, locally and explicitly,
// rather than by falling back to the loop-head recheck — and an opener
// already at the cap skips arming the gather window it could never use.
// (An overshoot of a single request is inherent: a dequeued request must
// be served with the batch that pulled it.) The gather timer is
// allocated once and Reset per batch rather than allocated per batch.
func (f *Frontend) run() {
	defer f.wg.Done()
	var timer *time.Timer
	if f.cfg.BatchWait > 0 {
		timer = time.NewTimer(f.cfg.BatchWait)
		timer.Stop() // armed per batch via Reset
	}
	for {
		p, ok := <-f.queue
		if !ok {
			return
		}
		batch := []*pending{p}
		items := int(p.item.Req.Items)
		gatherStart := time.Now()

		if timer != nil && items < f.cfg.MaxBatchItems {
			timer.Reset(f.cfg.BatchWait)
		gather:
			for len(batch) < f.cfg.MaxBatchRequests {
				select {
				case q, ok := <-f.queue:
					if !ok {
						break gather
					}
					batch = append(batch, q)
					items += int(q.item.Req.Items)
					if items >= f.cfg.MaxBatchItems {
						break gather
					}
				case <-timer.C:
					break gather
				}
			}
			// Go 1.23+ timers: Stop discards any pending fire, so the next
			// Reset starts the window cleanly without draining the channel.
			timer.Stop()
		} else if timer == nil && items < f.cfg.MaxBatchItems {
		drain:
			for len(batch) < f.cfg.MaxBatchRequests {
				select {
				case q, ok := <-f.queue:
					if !ok {
						break drain
					}
					batch = append(batch, q)
					items += int(q.item.Req.Items)
					if items >= f.cfg.MaxBatchItems {
						break drain
					}
				default:
					break drain
				}
			}
		}
		f.met.gatherNs.Observe(int64(time.Since(gatherStart)))
		f.dispatch(batch, items)
	}
}

// dispatch re-checks each gathered request's remaining budget against the
// estimated execution time (late admission control: queueing and the
// gather window have consumed budget since Submit), sheds the hopeless
// ones, and runs the survivors as one coalesced execution.
func (f *Frontend) dispatch(batch []*pending, items int) {
	// In a co-served deployment, wait out the tenant's drain-gate
	// entitlement before anything else: the wait consumes the batch's SLA
	// budget, so the deadline re-check below must run after it, and the
	// estimator observation must include it (admission then prices the
	// tenant's real, entitlement-limited service rate — the feedback that
	// makes an over-allocated backlog shed instead of queue unboundedly).
	dispatchStart := time.Now()
	if f.cfg.gate != nil {
		f.cfg.gate.wait(f.cfg.tenant)
		f.met.gateWaitNs.Observe(int64(time.Since(dispatchStart)))
	}
	now := time.Now()
	for _, p := range batch {
		f.met.queueWaitNs.Observe(int64(now.Sub(p.enq)))
	}
	keep := make([]*pending, 0, len(batch))
	for _, p := range batch {
		// Re-price the batch after every shed: a dropped large request
		// shrinks the execution the survivors actually face, and judging
		// them against the stale pre-shed estimate would cascade sheds
		// through requests that now comfortably fit.
		est := f.est.batch(items)
		// Probes ignore the (possibly stale) estimate: they exist to
		// re-measure it. A hard-expired deadline still sheds them.
		cutoff := now.Add(est)
		if p.probe {
			cutoff = now
		}
		if !p.deadline.IsZero() && cutoff.After(p.deadline) {
			f.stats.shedDeadline.Add(1)
			p.err = fmt.Errorf("%w: %v of budget left, execution needs ~%v",
				ErrShed, time.Until(p.deadline).Round(time.Microsecond), est.Round(time.Microsecond))
			close(p.done)
			items -= int(p.item.Req.Items)
			continue
		}
		keep = append(keep, p)
	}
	if len(keep) == 0 {
		return
	}

	calls := make([]core.BatchItem, len(keep))
	for i, p := range keep {
		calls[i] = p.item
	}
	start := time.Now()
	outs, err := f.exec.ExecuteBatch(calls)
	execDur := time.Since(start)
	f.cfg.gate.charge(f.cfg.tenant, execDur)
	f.est.observe(time.Since(dispatchStart), items)

	f.stats.execBusyNs.Add(uint64(execDur))
	f.met.execNs.Observe(int64(execDur))
	f.met.batchRequests.Observe(int64(len(keep)))
	f.met.batchItems.Observe(int64(items))
	f.stats.batches.Add(1)
	f.stats.batchedRequests.Add(uint64(len(keep)))
	f.stats.batchedItems.Add(uint64(items))
	f.stats.maxBatch.max(uint64(len(keep)))
	for i, p := range keep {
		if err != nil {
			p.err = err
		} else {
			p.scores = outs[i]
			f.stats.completed.Add(1)
		}
		close(p.done)
	}
}
