// Package frontend is the SLA-aware serving frontend that sits between
// the RPC front door and the inference engine. The paper frames
// recommendation inference as an SLA-bound service: "recommendation
// results are expected within a timed window ... If SLA targets cannot be
// satisfied, the inference request is dropped in favor of a potentially
// lower quality recommendation result" (Section II). The engine alone
// executes exactly one request per call; under heavy open-loop traffic
// that collapses — every queued request eventually completes, far too
// late to be useful, wasting the compute that could have served fresher
// requests.
//
// The frontend supplies the three production mechanisms that prevent the
// collapse:
//
//   - dynamic batching: concurrent ranking requests are coalesced into
//     one engine execution (core.Engine.ExecuteBatch), bounded by a max
//     request/item count and a deadline window tuned against the SLA
//     budget, amortizing per-execution overheads exactly as the paper's
//     batch-level parallelism amortizes per-batch overheads;
//
//   - admission control: a bounded queue sheds arrivals when full, and
//     requests whose remaining SLA budget cannot cover the estimated
//     service time are dropped early — recorded as fallbacks (the paper's
//     degraded recommendation), not timeouts, so no engine work is wasted
//     on answers nobody will use;
//
//   - load-shed accounting: every rejection carries the "shed:" wire
//     prefix that serve.Result books as a fallback, separating deliberate
//     quality degradation from hard failures in SLA reports.
//
// Hedging of slow sparse-shard RPCs lives in internal/replication; the
// cluster wires hedged callers into the engine underneath this frontend.
package frontend

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/trace"
)

// Executor runs coalesced batches; *core.Engine is the real
// implementation. Validate lets the frontend reject a malformed request
// at admission, before it can be coalesced with — and fail alongside —
// healthy neighbors.
type Executor interface {
	Validate(req *core.RankingRequest) error
	ExecuteBatch(items []core.BatchItem) ([][]float32, error)
}

// ErrShed is wrapped by every load-shedding rejection. Its message —
// and therefore every wrapping error's message — starts with
// rpc.ShedMsgPrefix, the wire contract serve.IsFallback keys on once
// the error has crossed an RPC boundary as a string.
var ErrShed = errors.New(rpc.ShedMsgPrefix + " request dropped for SLA fallback")

// ErrClosed reports a Submit against a closed frontend.
var ErrClosed = errors.New("frontend: closed")

// Config tunes the frontend. Zero values take the documented defaults.
type Config struct {
	// MaxBatchRequests caps how many requests coalesce into one engine
	// execution (default 16).
	MaxBatchRequests int
	// MaxBatchItems soft-caps the total items per execution: gathering
	// stops once the batch reaches it (default 1024).
	MaxBatchItems int
	// BatchWait is the deadline-bounded gather window: after the first
	// request of a batch arrives, the batcher waits at most this long for
	// more before dispatching. 0 dispatches immediately, still coalescing
	// whatever is already queued — pure backlog coalescing with no added
	// latency. Tune against the SLA budget (a window the budget cannot
	// absorb sheds everything).
	BatchWait time.Duration
	// MaxQueue bounds the admission queue (default 256). Arrivals beyond
	// it are shed immediately.
	MaxQueue int
	// Budget is the per-request SLA budget counted from Submit. Requests
	// that cannot complete inside it — at admission or when their batch
	// dispatches — are shed. 0 disables deadline-based shedding.
	Budget time.Duration
	// Obs receives the frontend's live metrics (frontend.* namespace):
	// the admission/batching counters as snapshot-time probes plus
	// per-stage latency histograms. Nil or obs.Discard() leaves only the
	// internal counters (which Stats and admission pricing always use).
	Obs *obs.Registry
	// Tracer, when set, finishes each submitted request's live trace with
	// its measured frontend latency; sheds finish as deadline misses.
	Tracer *obs.Tracer

	// gate/tenant wire a co-served frontend into its Multi's weighted
	// drain (set by Multi.Add; a standalone frontend leaves them zero and
	// dispatches unmetered).
	gate   *drainGate
	tenant string
}

func (c Config) withDefaults() Config {
	if c.MaxBatchRequests <= 0 {
		c.MaxBatchRequests = 16
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 1024
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	return c
}

// pending is one request waiting in the frontend.
type pending struct {
	item     core.BatchItem
	enq      time.Time // when Submit queued it (queue-wait accounting)
	deadline time.Time // zero when Budget is 0
	// probe marks a request admitted past a failing budget estimate so
	// the estimator keeps learning; it sheds only on a hard-expired
	// deadline, never on the (possibly stale) estimate.
	probe  bool
	scores []float32
	err    error
	done   chan struct{}
}

// probeEvery admits one of every probeEvery over-budget requests anyway.
// Without probes a cold-start outlier (or a transient load spike) locks
// the estimator above the budget, everything sheds, nothing executes,
// and the estimate can never recover — an admission-control death
// spiral. Probes bound the waste while restoring feedback.
const probeEvery = 16

// Frontend schedules ranking requests onto an Executor. Safe for
// concurrent Submit calls; one dispatcher goroutine owns batching.
type Frontend struct {
	cfg   Config
	exec  Executor
	queue chan *pending

	mu     sync.Mutex
	closed bool

	est       estimator
	probeTick atomic.Uint64
	stats     counters
	met       frontendMetrics
	tracer    *obs.Tracer
	wg        sync.WaitGroup
}

// frontendMetrics holds the frontend's histogram handles (nil no-ops
// without a registry). The monotonic counters stay in the internal
// counters struct — admission pricing reads them — and are exported to
// the registry as snapshot-time probes instead of being duplicated.
type frontendMetrics struct {
	queueWaitNs   *obs.Histogram // Submit enqueue → dispatch decision
	gatherNs      *obs.Histogram // batch opener dequeued → dispatch
	gateWaitNs    *obs.Histogram // drain-gate entitlement wait (co-serving)
	execNs        *obs.Histogram // coalesced ExecuteBatch latency
	batchRequests *obs.Histogram // requests per dispatched batch
	batchItems    *obs.Histogram // items per dispatched batch
}

// New starts a frontend over exec. Call Close to drain and stop.
func New(exec Executor, cfg Config) *Frontend {
	f := &Frontend{cfg: cfg.withDefaults(), exec: exec, tracer: cfg.Tracer}
	f.queue = make(chan *pending, f.cfg.MaxQueue)
	reg := f.cfg.Obs
	f.met = frontendMetrics{
		queueWaitNs:   reg.Histogram("frontend.queue_wait_ns"),
		gatherNs:      reg.Histogram("frontend.gather_ns"),
		gateWaitNs:    reg.Histogram("frontend.gate_wait_ns"),
		execNs:        reg.Histogram("frontend.exec_ns"),
		batchRequests: reg.Histogram("frontend.batch_requests"),
		batchItems:    reg.Histogram("frontend.batch_items"),
	}
	reg.RegisterProbe("frontend.queue_depth", func() int64 { return int64(len(f.queue)) })
	reg.RegisterProbeGroup(func(emit func(string, int64)) {
		s := f.Stats()
		emit("frontend.submitted", int64(s.Submitted))
		emit("frontend.completed", int64(s.Completed))
		emit("frontend.batches", int64(s.Batches))
		emit("frontend.batched_requests", int64(s.BatchedRequests))
		emit("frontend.batched_items", int64(s.BatchedItems))
		emit("frontend.max_batch_requests", int64(s.MaxBatchRequests))
		emit("frontend.shed_queue_full", int64(s.ShedQueueFull))
		emit("frontend.shed_budget", int64(s.ShedBudget))
		emit("frontend.shed_deadline", int64(s.ShedDeadline))
		emit("frontend.probes", int64(s.Probes))
		emit("frontend.exec_busy_ns", int64(s.ExecBusyNs))
	})
	f.wg.Add(1)
	go f.run()
	return f
}

// Close stops admission, drains queued requests through the executor,
// and waits for the dispatcher to exit.
func (f *Frontend) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	close(f.queue)
	f.mu.Unlock()
	f.wg.Wait()
}

// Submit runs one request through the frontend, blocking until it is
// served or shed. A shed returns an error wrapping ErrShed; the caller
// serves the degraded fallback instead.
func (f *Frontend) Submit(ctx trace.Context, req *core.RankingRequest) ([]float32, error) {
	// Reject malformed requests before batching: coalesced execution
	// fails as a unit, so a bad request must never share a batch with
	// healthy ones (the unfronted path fails only the sender; fronting
	// must not weaken that isolation).
	if err := f.exec.Validate(req); err != nil {
		return nil, err
	}
	now := time.Now()
	p := &pending{item: core.BatchItem{Ctx: ctx, Req: req}, enq: now, done: make(chan struct{})}
	if f.cfg.Budget > 0 {
		p.deadline = now.Add(f.cfg.Budget)
		// Early drop: if the estimated queue + service time already
		// exceeds the whole budget there is no point queueing — shed
		// before any work is spent. The backlog term is what makes this
		// bite under overload: a request that would fit an idle system
		// still sheds when seconds of queue stand ahead of it. One in
		// probeEvery over-budget requests is admitted as a probe instead.
		est := f.est.request(int(req.Items)) + f.cfg.BatchWait
		if queued := len(f.queue); queued > 0 {
			est += f.est.batch(queued * f.meanRequestItems(int(req.Items)))
		}
		if now.Add(est).After(p.deadline) {
			if f.probeTick.Add(1)%probeEvery != 0 {
				f.stats.shedBudget.Add(1)
				f.tracer.Finish(ctx.TraceID, time.Since(now), true)
				return nil, fmt.Errorf("%w: estimated service %v exceeds budget %v", ErrShed, est.Round(time.Microsecond), f.cfg.Budget)
			}
			p.probe = true
			f.stats.probes.Add(1)
		}
	}

	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrClosed
	}
	select {
	case f.queue <- p:
		f.mu.Unlock()
	default:
		f.mu.Unlock()
		f.stats.shedQueueFull.Add(1)
		f.tracer.Finish(ctx.TraceID, time.Since(now), true)
		return nil, fmt.Errorf("%w: queue full (%d deep)", ErrShed, f.cfg.MaxQueue)
	}
	f.stats.submitted.Add(1)
	<-p.done
	// A non-nil error here is a late shed (dispatch-time deadline check)
	// or an execution failure; either way the request missed its answer.
	f.tracer.Finish(ctx.TraceID, time.Since(now), p.err != nil)
	return p.scores, p.err
}

// QueueDepth reports how many requests are waiting for a batch — the
// backpressure gauge operators (and tests) read.
func (f *Frontend) QueueDepth() int { return len(f.queue) }

// QueueCap reports the admission queue's bound after defaulting — the
// denominator for queue-occupancy signals.
func (f *Frontend) QueueCap() int { return f.cfg.MaxQueue }

// meanRequestItems estimates items per queued request from history,
// falling back to the current request's size before any batch ran.
func (f *Frontend) meanRequestItems(fallback int) int {
	reqs := f.stats.batchedRequests.Load()
	if reqs == 0 {
		return fallback
	}
	return int(f.stats.batchedItems.Load() / reqs)
}
