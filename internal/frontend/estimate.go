package frontend

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// estimator prices a request by its item count from the median per-item
// cost of recent executions. The median (not a mean or EWMA) matters: a
// single cold-start or GC-stretched outlier must not lock the estimate
// above the SLA budget — with a median it washes out after a few normal
// executions, and the admission probes guarantee those executions
// happen. Until the first observation every estimate is zero: the
// frontend admits optimistically and learns from real executions.
type estimator struct {
	mu      sync.Mutex
	samples [estimatorWindow]float64 // per-item seconds, ring buffer
	n       int                      // filled entries
	idx     int                      // next write position
}

// estimatorWindow is how many recent executions the median spans.
const estimatorWindow = 9

// observe folds one execution (total duration, items coalesced) in.
func (e *estimator) observe(d time.Duration, items int) {
	if items <= 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.samples[e.idx] = d.Seconds() / float64(items)
	e.idx = (e.idx + 1) % estimatorWindow
	if e.n < estimatorWindow {
		e.n++
	}
}

// perItem returns the median per-item cost in seconds (0 before any
// observation).
func (e *estimator) perItem() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.n == 0 {
		return 0
	}
	tmp := make([]float64, e.n)
	copy(tmp, e.samples[:e.n])
	sort.Float64s(tmp)
	return tmp[e.n/2]
}

// request estimates serving one request of n items in its own batch.
func (e *estimator) request(n int) time.Duration { return e.batch(n) }

// batch estimates executing a batch of n total items.
func (e *estimator) batch(n int) time.Duration {
	return time.Duration(e.perItem() * float64(n) * float64(time.Second))
}

// counters are the frontend's monotonic statistics.
type counters struct {
	submitted       atomic.Uint64
	completed       atomic.Uint64
	batches         atomic.Uint64
	batchedRequests atomic.Uint64
	batchedItems    atomic.Uint64
	shedQueueFull   atomic.Uint64
	shedBudget      atomic.Uint64
	shedDeadline    atomic.Uint64
	probes          atomic.Uint64
	execBusyNs      atomic.Uint64
	maxBatch        atomicMax
}

// atomicMax is a CAS-maintained running maximum.
type atomicMax struct{ v atomic.Uint64 }

func (m *atomicMax) max(x uint64) {
	for {
		cur := m.v.Load()
		if x <= cur || m.v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// Stats is a snapshot of the frontend's counters.
type Stats struct {
	// Submitted requests admitted to the queue; Completed ones served
	// with real scores.
	Submitted, Completed uint64
	// Batches executed, the requests and items coalesced into them, and
	// the largest coalesced request count observed.
	Batches, BatchedRequests, BatchedItems, MaxBatchRequests uint64
	// Sheds by cause: queue full at admission, budget short at admission,
	// budget exhausted at dispatch.
	ShedQueueFull, ShedBudget, ShedDeadline uint64
	// Probes are over-budget requests admitted anyway to keep the
	// service-time estimator learning.
	Probes uint64
	// ExecBusyNs is cumulative executor busy time (nanoseconds spent in
	// ExecuteBatch) — the utilization signal the elastic scheduler turns
	// into a busy fraction by differencing across its interval.
	ExecBusyNs uint64
}

// Sheds is the total load shed across causes.
func (s Stats) Sheds() uint64 { return s.ShedQueueFull + s.ShedBudget + s.ShedDeadline }

// RequestsPerBatch is the mean coalescing factor.
func (s Stats) RequestsPerBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.BatchedRequests) / float64(s.Batches)
}

// Stats snapshots the counters.
func (f *Frontend) Stats() Stats {
	return Stats{
		Submitted:        f.stats.submitted.Load(),
		Completed:        f.stats.completed.Load(),
		Batches:          f.stats.batches.Load(),
		BatchedRequests:  f.stats.batchedRequests.Load(),
		BatchedItems:     f.stats.batchedItems.Load(),
		MaxBatchRequests: f.stats.maxBatch.v.Load(),
		ShedQueueFull:    f.stats.shedQueueFull.Load(),
		ShedBudget:       f.stats.shedBudget.Load(),
		ShedDeadline:     f.stats.shedDeadline.Load(),
		Probes:           f.stats.probes.Load(),
		ExecBusyNs:       f.stats.execBusyNs.Load(),
	}
}
