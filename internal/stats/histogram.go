package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-bucket histogram over float64 observations. It is
// used to render the embedding-table size distribution of Fig. 5 and to
// sanity-check workload generators.
type Histogram struct {
	// Edges holds len(Counts)+1 monotonically increasing bucket edges.
	Edges []float64
	// Counts holds the number of observations per bucket. Observations
	// below Edges[0] land in bucket 0; observations at or above the last
	// edge land in the final bucket.
	Counts []int
	total  int
}

// NewHistogram builds a histogram with n equal-width buckets spanning
// [lo, hi]. It panics if n < 1 or hi <= lo, which are programmer errors.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 {
		panic(fmt.Sprintf("stats: histogram bucket count %d < 1", n))
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: histogram range [%g, %g) is empty", lo, hi))
	}
	edges := make([]float64, n+1)
	w := (hi - lo) / float64(n)
	for i := range edges {
		edges[i] = lo + float64(i)*w
	}
	return &Histogram{Edges: edges, Counts: make([]int, n)}
}

// NewLogHistogram builds a histogram with n buckets whose edges are
// logarithmically spaced across [lo, hi]. Both bounds must be positive.
// Log spacing matches how the paper presents table-size distributions,
// which span four orders of magnitude.
func NewLogHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 {
		panic(fmt.Sprintf("stats: histogram bucket count %d < 1", n))
	}
	if lo <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: log histogram range [%g, %g) invalid", lo, hi))
	}
	edges := make([]float64, n+1)
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := range edges {
		f := float64(i) / float64(n)
		edges[i] = math.Exp(llo + f*(lhi-llo))
	}
	return &Histogram{Edges: edges, Counts: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	// Buckets are half-open [edge[i], edge[i+1]); find the first edge
	// strictly greater than x, then step back into bucket space.
	idx := sort.Search(len(h.Edges), func(i int) bool { return h.Edges[i] > x })
	if idx > 0 {
		idx--
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.total++
}

// AddAll records every observation in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// Merge folds another histogram's counts into h. Both histograms must
// share the same bucket edges (built with identical constructor
// arguments); mismatched layouts are a programmer error and panic.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.total == 0 {
		return
	}
	if len(h.Edges) != len(o.Edges) || len(h.Counts) != len(o.Counts) {
		panic(fmt.Sprintf("stats: merging histograms with %d and %d buckets", len(h.Counts), len(o.Counts)))
	}
	for i, e := range h.Edges {
		if e != o.Edges[i] {
			panic(fmt.Sprintf("stats: merging histograms with different edges at %d: %g vs %g", i, e, o.Edges[i]))
		}
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.total += o.total
}

// Quantile reconstructs the q-quantile (q clamped to [0,1]) by walking
// the cumulative bucket counts and interpolating linearly inside the
// landing bucket. The result is exact to within one bucket width; an
// empty histogram returns NaN.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.total)
	cum := 0.0
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			frac := (rank - cum) / float64(c)
			lo, hi := h.Edges[i], h.Edges[i+1]
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	// q == 1 with floating-point slack: the top edge of the last occupied
	// bucket.
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] > 0 {
			return h.Edges[i+1]
		}
	}
	return math.NaN()
}

// Render draws an ASCII bar chart with the given maximum bar width.
// Empty histograms render a single explanatory line.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	if h.total == 0 {
		return "(no observations)\n"
	}
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		fmt.Fprintf(&b, "[%10.3g, %10.3g) %6d %s\n",
			h.Edges[i], h.Edges[i+1], c, strings.Repeat("#", bar))
	}
	return b.String()
}
