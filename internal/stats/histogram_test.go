package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddAll([]float64{0, 1, 2.5, 5, 9.999})
	if h.Total() != 5 {
		t.Fatalf("Total = %d, want 5", h.Total())
	}
	want := []int{2, 1, 1, 0, 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
}

func TestHistogramOutOfRangeClamps(t *testing.T) {
	h := NewHistogram(0, 10, 2)
	h.Add(-5)
	h.Add(100)
	if h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Errorf("out-of-range values should clamp to end buckets: %v", h.Counts)
	}
}

func TestHistogramBoundaryValues(t *testing.T) {
	h := NewHistogram(0, 3, 3)
	h.Add(1) // exactly on the edge between bucket 0 and 1 → bucket 1
	if h.Counts[1] != 1 {
		t.Errorf("edge value should land in upper bucket: %v", h.Counts)
	}
	h.Add(3) // exactly the top edge → last bucket
	if h.Counts[2] != 1 {
		t.Errorf("top edge should land in last bucket: %v", h.Counts)
	}
}

func TestLogHistogramEdges(t *testing.T) {
	h := NewLogHistogram(1, 1000, 3)
	// Edges should be 1, 10, 100, 1000.
	want := []float64{1, 10, 100, 1000}
	for i, e := range h.Edges {
		if math.Abs(e-want[i])/want[i] > 1e-9 {
			t.Errorf("edge %d = %v, want %v", i, e, want[i])
		}
	}
	h.Add(5)
	h.Add(50)
	h.Add(500)
	for i, c := range h.Counts {
		if c != 1 {
			t.Errorf("bucket %d = %d, want 1", i, c)
		}
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	cases := []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
		func() { NewLogHistogram(0, 10, 3) },
		func() { NewLogHistogram(10, 1, 3) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestHistogramTotalConservedProperty(t *testing.T) {
	f := func(xs []float64) bool {
		h := NewHistogram(-100, 100, 17)
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
			n++
		}
		sum := 0
		for _, c := range h.Counts {
			sum += c
		}
		return sum == n && h.Total() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramQuantileBasic(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.5) // one observation per unit bucket
	}
	for _, tc := range []struct{ q, want float64 }{
		{0, 0}, {0.5, 50}, {0.95, 95}, {1, 100},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1.0 {
			t.Errorf("Quantile(%v) = %v, want ~%v", tc.q, got, tc.want)
		}
	}
	empty := NewHistogram(0, 1, 2)
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	// Out-of-range q clamps rather than panicking.
	if got := h.Quantile(-3); math.IsNaN(got) {
		t.Error("q<0 should clamp to 0")
	}
	if got := h.Quantile(7); math.IsNaN(got) {
		t.Error("q>1 should clamp to 1")
	}
}

func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(xs []float64, qa, qb float64) bool {
		h := NewHistogram(-50, 50, 23)
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
			n++
		}
		if n == 0 {
			return true
		}
		// Normalize the two quantiles into [0,1] and order them.
		qa, qb = math.Abs(math.Mod(qa, 1)), math.Abs(math.Mod(qb, 1))
		if math.IsNaN(qa) || math.IsNaN(qb) {
			return true
		}
		if qa > qb {
			qa, qb = qb, qa
		}
		return h.Quantile(qa) <= h.Quantile(qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramMergeEquivalentToCombinedProperty(t *testing.T) {
	f := func(xs, ys []float64) bool {
		a := NewHistogram(-100, 100, 17)
		b := NewHistogram(-100, 100, 17)
		combined := NewHistogram(-100, 100, 17)
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			a.Add(x)
			combined.Add(x)
		}
		for _, y := range ys {
			if math.IsNaN(y) {
				continue
			}
			b.Add(y)
			combined.Add(y)
		}
		a.Merge(b)
		if a.Total() != combined.Total() {
			return false
		}
		for i := range a.Counts {
			if a.Counts[i] != combined.Counts[i] {
				return false
			}
		}
		// Identical counts imply identical quantiles.
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
			qa, qc := a.Quantile(q), combined.Quantile(q)
			if qa != qc && !(math.IsNaN(qa) && math.IsNaN(qc)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramMergeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("merging mismatched layouts should panic")
		}
	}()
	a := NewHistogram(0, 10, 5)
	b := NewHistogram(0, 10, 7)
	b.Add(1)
	a.Merge(b)
}

func TestHistogramMergeNilAndEmpty(t *testing.T) {
	a := NewHistogram(0, 10, 5)
	a.Add(3)
	a.Merge(nil)
	a.Merge(NewHistogram(0, 20, 9)) // empty: layout not even checked
	if a.Total() != 1 {
		t.Errorf("Total = %d after no-op merges, want 1", a.Total())
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 10, 2)
	if !strings.Contains(h.Render(40), "no observations") {
		t.Error("empty render should note no observations")
	}
	h.AddAll([]float64{1, 1, 8})
	out := h.Render(10)
	if !strings.Contains(out, "#") {
		t.Errorf("render should contain bars:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Errorf("render should have 2 lines, got %d", lines)
	}
}
