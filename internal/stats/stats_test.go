package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSampleEmpty(t *testing.T) {
	s := NewSample(nil)
	if s.Len() != 0 || s.Mean() != 0 || s.P50() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatalf("empty sample should return zeros, got len=%d mean=%v p50=%v", s.Len(), s.Mean(), s.P50())
	}
}

func TestSampleSingle(t *testing.T) {
	s := NewSample([]float64{42})
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if got := s.Quantile(q); got != 42 {
			t.Errorf("Quantile(%v) = %v, want 42", q, got)
		}
	}
	if s.Mean() != 42 || s.Min() != 42 || s.Max() != 42 {
		t.Errorf("single-element summary wrong: mean=%v min=%v max=%v", s.Mean(), s.Min(), s.Max())
	}
}

func TestQuantileInterpolation(t *testing.T) {
	// [1,2,3,4,5]: median 3, P90 interpolates between 4 and 5.
	s := NewSample([]float64{5, 3, 1, 4, 2})
	if got := s.P50(); got != 3 {
		t.Errorf("P50 = %v, want 3", got)
	}
	if got := s.Quantile(0.9); !almostEqual(got, 4.6, 1e-12) {
		t.Errorf("Quantile(0.9) = %v, want 4.6", got)
	}
	if got := s.Quantile(0.25); !almostEqual(got, 2, 1e-12) {
		t.Errorf("Quantile(0.25) = %v, want 2", got)
	}
}

func TestQuantileClamping(t *testing.T) {
	s := NewSample([]float64{1, 2, 3})
	if s.Quantile(-0.5) != 1 {
		t.Errorf("negative quantile should clamp to min")
	}
	if s.Quantile(1.5) != 3 {
		t.Errorf("quantile > 1 should clamp to max")
	}
}

func TestSampleDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	NewSample(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("NewSample mutated its input: %v", in)
	}
}

func TestQuantileMonotonicProperty(t *testing.T) {
	f := func(xs []float64, a, b float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		qa, qb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		s := NewSample(xs)
		return s.Quantile(qa) <= s.Quantile(qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantileBoundsProperty(t *testing.T) {
	f := func(xs []float64, q float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		s := NewSample(xs)
		v := s.Quantile(math.Abs(math.Mod(q, 1)))
		return v >= s.Min() && v <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanSumProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true
			}
		}
		s := NewSample(xs)
		if len(xs) == 0 {
			return s.Mean() == 0
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		return almostEqual(s.Sum(), sum, 1e-6*(1+math.Abs(sum))) &&
			almostEqual(s.Mean(), sum/float64(len(xs)), 1e-6*(1+math.Abs(sum)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantileMatchesSortedRank(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 1001)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	s := NewSample(xs)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	// With n-1 = 1000, q=0.5 lands exactly on index 500.
	if got, want := s.P50(), sorted[500]; got != want {
		t.Errorf("P50 = %v, want exact rank value %v", got, want)
	}
	if got, want := s.P90(), sorted[900]; got != want {
		t.Errorf("P90 = %v, want %v", got, want)
	}
	if got, want := s.P99(), sorted[990]; got != want {
		t.Errorf("P99 = %v, want %v", got, want)
	}
}

func TestOverhead(t *testing.T) {
	base := Quantiles{P50: 10, P90: 20, P99: 40}
	dist := Quantiles{P50: 11, P90: 25, P99: 40.4}
	ov := Overhead(dist, base)
	if !almostEqual(ov.P50, 0.1, 1e-12) || !almostEqual(ov.P90, 0.25, 1e-12) || !almostEqual(ov.P99, 0.01, 1e-12) {
		t.Errorf("Overhead = %+v", ov)
	}
}

func TestOverheadZeroBase(t *testing.T) {
	ov := Overhead(Quantiles{P50: 5}, Quantiles{})
	if ov.P50 != 0 || ov.P90 != 0 || ov.P99 != 0 {
		t.Errorf("zero base should yield zero overhead, got %+v", ov)
	}
}

func TestStdDev(t *testing.T) {
	s := NewSample([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if got := s.StdDev(); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := NewSample(nil).StdDev(); got != 0 {
		t.Errorf("empty StdDev = %v, want 0", got)
	}
}

func TestDurationSample(t *testing.T) {
	s := NewDurationSample([]time.Duration{time.Second, 3 * time.Second})
	if got := s.Mean(); !almostEqual(got, 2, 1e-12) {
		t.Errorf("duration mean = %v, want 2s", got)
	}
}

func TestQuantilesString(t *testing.T) {
	q := Quantiles{P50: 1, P90: 2, P99: 3}
	if q.String() == "" {
		t.Error("String should be non-empty")
	}
}
