package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Stack is a named breakdown of a total into labeled components, the unit
// of the paper's "latency stack" and "CPU time stack" figures (Figs. 8, 9,
// 11b, 13, 14). Component order is preserved as inserted so that rendered
// stacks match the paper's legend order.
type Stack struct {
	Label      string
	components []string
	values     map[string]float64
}

// NewStack returns an empty stack with the given label (typically a
// sharding configuration name such as "load-bal 4 shards").
func NewStack(label string) *Stack {
	return &Stack{Label: label, values: make(map[string]float64)}
}

// Set assigns a component value, inserting the component at the end of the
// ordering on first use.
func (s *Stack) Set(component string, v float64) {
	if _, ok := s.values[component]; !ok {
		s.components = append(s.components, component)
	}
	s.values[component] = v
}

// Add accumulates into a component, inserting it on first use.
func (s *Stack) Add(component string, v float64) {
	if _, ok := s.values[component]; !ok {
		s.components = append(s.components, component)
	}
	s.values[component] += v
}

// Get returns the component value (0 if absent).
func (s *Stack) Get(component string) float64 { return s.values[component] }

// Components returns the component names in insertion order.
func (s *Stack) Components() []string {
	out := make([]string, len(s.components))
	copy(out, s.components)
	return out
}

// Total returns the sum of all components.
func (s *Stack) Total() float64 {
	var t float64
	for _, v := range s.values {
		t += v
	}
	return t
}

// StackGroup is an ordered set of stacks normalized and rendered together,
// mirroring one subfigure (e.g. Fig. 8a has one stack per sharding config).
type StackGroup struct {
	Title  string
	Stacks []*Stack
}

// NewStackGroup returns an empty group with a title.
func NewStackGroup(title string) *StackGroup { return &StackGroup{Title: title} }

// Append adds a stack to the group.
func (g *StackGroup) Append(s *Stack) { g.Stacks = append(g.Stacks, s) }

// MaxTotal returns the largest stack total, the normalization denominator
// used by all of the paper's stack figures ("normalized to the highest
// latency configuration").
func (g *StackGroup) MaxTotal() float64 {
	var m float64
	for _, s := range g.Stacks {
		if t := s.Total(); t > m {
			m = t
		}
	}
	return m
}

// allComponents returns the union of component names across stacks, in
// first-seen order.
func (g *StackGroup) allComponents() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range g.Stacks {
		for _, c := range s.components {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// Render produces an ASCII table: one row per stack, one column per
// component, all values normalized to the group's max total. This is the
// textual analogue of the paper's normalized stacked-bar figures.
func (g *StackGroup) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", g.Title)
	comps := g.allComponents()
	max := g.MaxTotal()
	if max == 0 {
		max = 1
	}
	// Header.
	fmt.Fprintf(&b, "%-26s", "config")
	for _, c := range comps {
		fmt.Fprintf(&b, " %14s", truncate(c, 14))
	}
	fmt.Fprintf(&b, " %10s\n", "total")
	for _, s := range g.Stacks {
		fmt.Fprintf(&b, "%-26s", truncate(s.Label, 26))
		for _, c := range comps {
			fmt.Fprintf(&b, " %14.4f", s.Get(c)/max)
		}
		fmt.Fprintf(&b, " %10.4f\n", s.Total()/max)
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// Series is a labeled (x, y) sequence used for line-style figures
// (Fig. 1's growth curves).
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// RenderSeries renders aligned series as a table with one row per x value.
// All series must share x values; extra points are rendered per series.
func RenderSeries(title string, series ...Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	// Union of x values across series.
	xset := make(map[float64]bool)
	for _, s := range series {
		for _, x := range s.X {
			xset[x] = true
		}
	}
	xs := make([]float64, 0, len(xset))
	for x := range xset {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	fmt.Fprintf(&b, "%10s", "x")
	for _, s := range series {
		fmt.Fprintf(&b, " %16s", truncate(s.Label, 16))
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%10.4g", x)
		for _, s := range series {
			if y, ok := lookupXY(s, x); ok {
				fmt.Fprintf(&b, " %16.6g", y)
			} else {
				fmt.Fprintf(&b, " %16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func lookupXY(s Series, x float64) (float64, bool) {
	for i, sx := range s.X {
		if sx == x && i < len(s.Y) {
			return s.Y[i], true
		}
	}
	return 0, false
}
