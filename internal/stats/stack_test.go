package stats

import (
	"strings"
	"testing"
)

func TestStackSetAddGet(t *testing.T) {
	s := NewStack("cfg")
	s.Set("a", 1)
	s.Add("a", 2)
	s.Add("b", 5)
	if s.Get("a") != 3 || s.Get("b") != 5 || s.Get("missing") != 0 {
		t.Errorf("stack values wrong: a=%v b=%v", s.Get("a"), s.Get("b"))
	}
	if s.Total() != 8 {
		t.Errorf("Total = %v, want 8", s.Total())
	}
}

func TestStackComponentOrderPreserved(t *testing.T) {
	s := NewStack("cfg")
	s.Add("z", 1)
	s.Add("a", 1)
	s.Add("m", 1)
	s.Set("z", 2) // re-set must not reorder
	got := s.Components()
	want := []string{"z", "a", "m"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("component order = %v, want %v", got, want)
		}
	}
}

func TestStackGroupNormalization(t *testing.T) {
	g := NewStackGroup("test")
	s1 := NewStack("one")
	s1.Set("x", 2)
	s2 := NewStack("two")
	s2.Set("x", 4)
	g.Append(s1)
	g.Append(s2)
	if g.MaxTotal() != 4 {
		t.Fatalf("MaxTotal = %v, want 4", g.MaxTotal())
	}
	out := g.Render()
	if !strings.Contains(out, "0.5000") || !strings.Contains(out, "1.0000") {
		t.Errorf("render should show normalized 0.5 and 1.0:\n%s", out)
	}
}

func TestStackGroupEmptyRender(t *testing.T) {
	g := NewStackGroup("empty")
	out := g.Render()
	if !strings.Contains(out, "empty") {
		t.Errorf("render should contain title:\n%s", out)
	}
}

func TestStackGroupComponentUnion(t *testing.T) {
	g := NewStackGroup("u")
	s1 := NewStack("one")
	s1.Set("a", 1)
	s2 := NewStack("two")
	s2.Set("b", 1)
	g.Append(s1)
	g.Append(s2)
	comps := g.allComponents()
	if len(comps) != 2 || comps[0] != "a" || comps[1] != "b" {
		t.Errorf("component union = %v", comps)
	}
}

func TestRenderSeries(t *testing.T) {
	out := RenderSeries("growth",
		Series{Label: "features", X: []float64{2017, 2018}, Y: []float64{1, 3}},
		Series{Label: "embeddings", X: []float64{2017, 2019}, Y: []float64{1, 10}},
	)
	if !strings.Contains(out, "growth") || !strings.Contains(out, "2018") {
		t.Errorf("series render missing content:\n%s", out)
	}
	// 2018 has no embeddings point → "-" placeholder.
	if !strings.Contains(out, "-") {
		t.Errorf("missing placeholder for absent point:\n%s", out)
	}
}

func TestTruncate(t *testing.T) {
	if got := truncate("short", 10); got != "short" {
		t.Errorf("truncate short = %q", got)
	}
	if got := truncate("averylongstring", 8); len(got) > 10 { // ellipsis is multibyte
		t.Errorf("truncate long = %q", got)
	}
}
