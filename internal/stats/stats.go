// Package stats provides the statistical primitives used throughout the
// distributed-inference characterization: exact quantiles, streaming
// summaries, histograms, and small helpers for normalizing series the way
// the paper's figures do.
//
// The paper reports P50/P90/P99 latency and compute overheads (Figs. 6, 7,
// 16), normalized latency stacks (Figs. 8, 11, 13), and normalized CPU
// stacks (Figs. 9, 14). Every one of those reductions lives here so the
// experiment drivers stay declarative.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample is an immutable collection of float64 observations with cached
// order statistics. Build one with NewSample; the constructor copies and
// sorts the input once so repeated quantile queries are O(1).
type Sample struct {
	sorted []float64
	sum    float64
}

// NewSample copies xs, sorts the copy, and returns a Sample over it.
// An empty input yields a usable Sample whose queries return 0.
func NewSample(xs []float64) *Sample {
	s := &Sample{sorted: make([]float64, len(xs))}
	copy(s.sorted, xs)
	sort.Float64s(s.sorted)
	for _, x := range s.sorted {
		s.sum += x
	}
	return s
}

// DurationsToSeconds converts a slice of time.Duration to float64 seconds.
func DurationsToSeconds(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// NewDurationSample builds a Sample over durations expressed in seconds.
func NewDurationSample(ds []time.Duration) *Sample {
	return NewSample(DurationsToSeconds(ds))
}

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.sorted) }

// Sum returns the sum of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.sorted) == 0 {
		return 0
	}
	return s.sum / float64(len(s.sorted))
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.sorted) == 0 {
		return 0
	}
	return s.sorted[0]
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.sorted) == 0 {
		return 0
	}
	return s.sorted[len(s.sorted)-1]
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) using linear
// interpolation between closest ranks, the same estimator NumPy defaults
// to. Out-of-range q values are clamped.
func (s *Sample) Quantile(q float64) float64 {
	n := len(s.sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return s.sorted[0]
	}
	if q >= 1 {
		return s.sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.sorted[lo]
	}
	frac := pos - float64(lo)
	return s.sorted[lo]*(1-frac) + s.sorted[hi]*frac
}

// P50 returns the median.
func (s *Sample) P50() float64 { return s.Quantile(0.50) }

// P90 returns the 90th percentile.
func (s *Sample) P90() float64 { return s.Quantile(0.90) }

// P99 returns the 99th percentile.
func (s *Sample) P99() float64 { return s.Quantile(0.99) }

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() float64 {
	n := len(s.sorted)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, x := range s.sorted {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Quantiles is the paper's standard quantile triple.
type Quantiles struct {
	P50, P90, P99 float64
}

// QuantileTriple extracts P50/P90/P99 in one call.
func (s *Sample) QuantileTriple() Quantiles {
	return Quantiles{P50: s.P50(), P90: s.P90(), P99: s.P99()}
}

// Overhead computes the paper's "change vs singular" metric at each
// quantile: (distributed − singular) / singular. A zero singular value
// yields 0 to keep figures well-defined on degenerate inputs.
func Overhead(distributed, singular Quantiles) Quantiles {
	return Quantiles{
		P50: relChange(distributed.P50, singular.P50),
		P90: relChange(distributed.P90, singular.P90),
		P99: relChange(distributed.P99, singular.P99),
	}
}

func relChange(x, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (x - base) / base
}

// String renders the triple the way the paper's axes label them.
func (q Quantiles) String() string {
	return fmt.Sprintf("p50=%.4g p90=%.4g p99=%.4g", q.P50, q.P90, q.P99)
}
