// Package platform models the two server classes of the paper's test
// fleet (Section V-B): SC-Large, "a typical large server ... 256GB of
// DRAM and two 20-core Intel CPUs", and SC-Small, "a typical, more
// efficient web server" with slower cores, a quarter of the memory, and
// less network bandwidth.
//
// The properties that matter to the characterization are relative: the
// per-request RPC boilerplate costs more cycles on slower cores, and the
// network path is slower. Sparse-operator time is dominated by memory
// access and is deliberately NOT scaled — that insensitivity is exactly
// the Fig. 15 finding ("no significant latency overheads are incurred
// despite platform differences") and the basis for the paper's
// suggestion to serve sparse shards from cheaper machines.
package platform

import (
	"time"

	"repro/internal/netsim"
)

// Platform describes one server class.
type Platform struct {
	// Name labels the platform in reports.
	Name string
	// BoilerplateScale multiplies the RPC service boilerplate cost,
	// modeling clock-speed differences on the service stack.
	BoilerplateScale float64
	// OpComputeScale stretches ML operator time; 1.0 for memory-bound
	// sparse shards on both classes.
	OpComputeScale float64
	// Network returns the platform's link profile, seeded per shard.
	Network func(seed int64) netsim.Profile
	// MemoryBytes is the advertised DRAM capacity (scaled units), used by
	// capacity checks in the serving examples.
	MemoryBytes int64
}

// Boilerplate cost of one RPC service invocation on SC-Large; see
// DESIGN.md for how this was calibrated against the paper's compute
// overhead proportions.
const BaseBoilerplate = 8 * time.Microsecond

// SCLarge is the paper's big dual-socket serving platform.
func SCLarge() Platform {
	return Platform{
		Name:             "SC-Large",
		BoilerplateScale: 1.0,
		OpComputeScale:   1.0,
		Network:          netsim.DataCenter,
		MemoryBytes:      256 * 1024 * 1024, // 256 GB at the 1024× scale
	}
}

// SCSmall is the efficient web-server platform: slower cores (heavier
// relative boilerplate), less network bandwidth, a quarter of the DRAM.
func SCSmall() Platform {
	return Platform{
		Name:             "SC-Small",
		BoilerplateScale: 1.6,
		OpComputeScale:   1.0, // sparse ops are memory-bound: unchanged
		Network:          netsim.Slow,
		MemoryBytes:      64 * 1024 * 1024,
	}
}
