package platform

import "testing"

func TestPlatformContracts(t *testing.T) {
	large, small := SCLarge(), SCSmall()
	if large.Name == small.Name {
		t.Error("platforms must be distinguishable")
	}
	// SC-Small: slower service stack, never slower sparse ops (they are
	// memory-bound — the Fig. 15 premise).
	if small.BoilerplateScale <= large.BoilerplateScale {
		t.Error("SC-Small should pay more for RPC boilerplate")
	}
	if small.OpComputeScale != large.OpComputeScale {
		t.Error("sparse-op time must not scale with platform (memory-bound)")
	}
	// Paper: SC-Small has a quarter of SC-Large's DRAM.
	if large.MemoryBytes != 4*small.MemoryBytes {
		t.Errorf("memory ratio %d:%d, want 4:1", large.MemoryBytes, small.MemoryBytes)
	}
	// Network: slower base, less bandwidth.
	lp, sp := large.Network(1), small.Network(1)
	if sp.Request.Base <= lp.Request.Base {
		t.Error("SC-Small links should be slower")
	}
	if sp.Request.BytesPerSec >= lp.Request.BytesPerSec {
		t.Error("SC-Small links should have less bandwidth")
	}
	if BaseBoilerplate <= 0 {
		t.Error("boilerplate cost must be positive")
	}
}

func TestNetworkSeeding(t *testing.T) {
	a := SCLarge().Network(7)
	b := SCLarge().Network(7)
	for i := 0; i < 10; i++ {
		if a.Request.Delay(100) != b.Request.Delay(100) {
			t.Fatal("same seed must give identical link behavior")
		}
	}
}
