// Package trace implements the paper's cross-layer distributed tracing
// framework (Section IV): lightweight instrumentation spanning the RPC
// service layer, the ML framework layer, and individual ML operators, with
// trace-context propagation across shards and an offline analyzer that
// reconstructs per-request latency and compute attributions.
//
// Design points taken from the paper:
//   - "At each trace point, metadata specific to the layer and a
//     wall-clock timestamp are logged to a lock-free buffer" — Recorder
//     appends spans through an atomic cursor into a preallocated slab.
//   - "Wall-clock time is desirable because its ordering helps achieve a
//     useful trace visualization ... most spans are small and sequential,
//     enabling wall-clock time as a proxy for CPU time."
//   - "Because the clocks on disparate servers will be skewed, network
//     latency is measured as the difference between the outstanding
//     request measured at the main shard and the end-to-end service
//     latency measured at the sparse shard" — see analyzer.go. Durations
//     are skew-immune; only cross-shard timestamp comparison is avoided.
package trace

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Layer tags which level of the stack a span was recorded at. The set
// mirrors the attribution categories of Figs. 8 and 9.
type Layer int

// Trace layers.
const (
	// LayerRequest is the end-to-end service span for one request at one
	// shard (at the main shard: full E2E; at a sparse shard: the service
	// time for one RPC call).
	LayerRequest Layer = iota
	// LayerSerDe covers request/response serialization and deserialization.
	LayerSerDe
	// LayerService is RPC service boilerplate: dispatch, context setup,
	// response framing — anything in the service handler that is neither
	// serde nor framework execution.
	LayerService
	// LayerNetOverhead is ML-framework time not spent inside operators
	// (scheduling, bookkeeping of async ops) — the paper's "Caffe2 Net
	// Overhead".
	LayerNetOverhead
	// LayerOp is one ML operator execution.
	LayerOp
	// LayerRPCCall is the outstanding time of one remote call measured at
	// the caller (issue → response future resolved).
	LayerRPCCall
	// LayerMigration covers online-resharding work: row-range streaming,
	// staging installs, and cutovers. Kept distinct from the serving
	// layers so migration cost is visible in timelines without polluting
	// the request-path attribution (the analyzer ignores it).
	LayerMigration
)

var layerNames = [...]string{
	LayerRequest:     "Request",
	LayerSerDe:       "RPC Ser/De",
	LayerService:     "RPC Service Function",
	LayerNetOverhead: "Net Overhead",
	LayerOp:          "Operator",
	LayerRPCCall:     "RPC Call",
	LayerMigration:   "Migration",
}

// String returns the figure-legend name of the layer.
func (l Layer) String() string {
	if int(l) < len(layerNames) {
		return layerNames[l]
	}
	return "Unknown"
}

// Span is one timed event. Start is taken from the recording shard's local
// clock (which may be skewed); Dur is skew-immune.
type Span struct {
	// TraceID groups all spans of one inference request across shards.
	TraceID uint64
	// CallID links a LayerRPCCall span at the caller with the
	// LayerRequest/other spans it produced at the callee. Zero when the
	// span does not belong to a remote call.
	CallID uint64
	// Shard names the recording shard ("main", "sparse1", ...).
	Shard string
	// Layer is the stack level.
	Layer Layer
	// Kind is the operator attribution class name for LayerOp spans
	// (e.g. "Dense", "Sparse"); empty otherwise.
	Kind string
	// Net names the ML net for framework-level spans ("net1", "net2").
	Net string
	// Name identifies the operator or event.
	Name string
	// Start is the shard-local wall-clock start time.
	Start time.Time
	// Dur is the span duration.
	Dur time.Duration
}

// SpanSink observes spans as they are recorded — the live-telemetry tee
// (obs.Tracer implements it). Consumers must be cheap on unsampled spans
// and must not call back into the recorder.
type SpanSink interface {
	ConsumeSpan(Span)
}

// sinkBox wraps the interface value so an atomic.Pointer can hold it.
type sinkBox struct{ sink SpanSink }

// Recorder collects spans for one shard. Appends go through an atomic
// cursor into a fixed slab — no locks on the hot path, matching the
// paper's lock-free trace buffer. When the slab fills, further spans are
// dropped and counted; sizing the slab is the harness's job.
type Recorder struct {
	shard  string
	slab   []Span
	cursor atomic.Int64
	drops  atomic.Int64
	// sink, when set, sees every span Record accepts — including ones
	// the full slab drops, so live tracing keeps working after the
	// offline buffer is exhausted.
	sink atomic.Pointer[sinkBox]
	// skew is added to recorded timestamps to simulate an unsynchronized
	// shard clock; the analyzer must remain correct in its presence.
	skew time.Duration

	idCounter atomic.Uint64
}

// NewRecorder creates a recorder for a shard with capacity for n spans.
func NewRecorder(shard string, n int) *Recorder {
	if n < 1 {
		n = 1
	}
	return &Recorder{shard: shard, slab: make([]Span, n)}
}

// SetClockSkew configures the simulated clock skew applied to Start
// timestamps. Call before recording begins.
func (r *Recorder) SetClockSkew(d time.Duration) { r.skew = d }

// Shard returns the shard name this recorder tags spans with.
func (r *Recorder) Shard() string { return r.shard }

// Now returns the shard-local (possibly skewed) time.
func (r *Recorder) Now() time.Time { return time.Now().Add(r.skew) }

// Record appends a span. The span's Shard is overwritten with the
// recorder's shard, and Start is adjusted by the configured skew if the
// caller captured it from the real clock via time.Now (callers should use
// r.Now for Start; Record applies no further adjustment).
func (r *Recorder) Record(s Span) {
	s.Shard = r.shard
	if b := r.sink.Load(); b != nil {
		b.sink.ConsumeSpan(s)
	}
	idx := r.cursor.Add(1) - 1
	if int(idx) >= len(r.slab) {
		r.drops.Add(1)
		return
	}
	r.slab[idx] = s
}

// SetSink installs (or, with nil, removes) a live span tee. Swaps are
// atomic with respect to concurrent Record calls.
func (r *Recorder) SetSink(s SpanSink) {
	if s == nil {
		r.sink.Store(nil)
		return
	}
	r.sink.Store(&sinkBox{sink: s})
}

// NextID returns a recorder-unique id, combined with the shard for
// call-id generation. IDs are never zero.
func (r *Recorder) NextID() uint64 { return r.idCounter.Add(1) }

// Drops returns how many spans were discarded due to a full slab.
func (r *Recorder) Drops() int64 { return r.drops.Load() }

// Len returns the number of recorded spans.
func (r *Recorder) Len() int {
	n := int(r.cursor.Load())
	if n > len(r.slab) {
		n = len(r.slab)
	}
	return n
}

// Spans returns a copy of all recorded spans.
func (r *Recorder) Spans() []Span {
	n := r.Len()
	out := make([]Span, n)
	copy(out, r.slab[:n])
	return out
}

// Reset discards all recorded spans (drops counter included).
func (r *Recorder) Reset() {
	r.cursor.Store(0)
	r.drops.Store(0)
}

// Context is the trace metadata propagated with every request and across
// every RPC hop, mirroring Thrift's RequestContext propagation.
type Context struct {
	TraceID uint64
	CallID  uint64
}

// String renders the context for debugging.
func (c Context) String() string {
	return fmt.Sprintf("trace=%d call=%d", c.TraceID, c.CallID)
}

// IDAllocator hands out process-unique trace ids.
type IDAllocator struct {
	next atomic.Uint64
}

// NewTraceID returns a fresh non-zero trace id.
func (a *IDAllocator) NewTraceID() uint64 { return a.next.Add(1) }

// Collector merges spans from many recorders for offline analysis.
type Collector struct {
	mu        sync.Mutex
	recorders []*Recorder
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Attach registers a recorder whose spans Gather will include.
func (c *Collector) Attach(r *Recorder) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recorders = append(c.recorders, r)
}

// Gather snapshots all spans from all attached recorders.
func (c *Collector) Gather() []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Span
	for _, r := range c.recorders {
		out = append(out, r.Spans()...)
	}
	return out
}

// Reset clears every attached recorder.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range c.recorders {
		r.Reset()
	}
}

// TotalDrops sums dropped spans across recorders; experiments assert this
// is zero so attributions are complete.
func (c *Collector) TotalDrops() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, r := range c.recorders {
		n += r.Drops()
	}
	return n
}
