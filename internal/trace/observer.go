package trace

import (
	"time"

	"repro/internal/nn"
)

// NetObserver adapts a Recorder to the nn.Observer interface, recording
// one LayerOp span per operator and one LayerNetOverhead span per net run
// (the residual between net wall time and the sum of operator times).
//
// A NetObserver is bound to one in-flight request: it stamps every span
// with the request's trace context. Create one per request execution.
type NetObserver struct {
	R *Recorder
	// Ctx is the request's trace context; CallID is non-zero on sparse
	// shards handling a remote call.
	Ctx Context
}

var _ nn.Observer = (*NetObserver)(nil)

// OpExecuted implements nn.Observer.
func (o *NetObserver) OpExecuted(netName string, op nn.Op, start time.Time, dur time.Duration) {
	o.R.Record(Span{
		TraceID: o.Ctx.TraceID,
		CallID:  o.Ctx.CallID,
		Layer:   LayerOp,
		Kind:    op.Kind().String(),
		Net:     netName,
		Name:    op.Name(),
		Start:   start.Add(o.R.skew),
		Dur:     dur,
	})
}

// NetFinished implements nn.Observer.
func (o *NetObserver) NetFinished(netName string, start time.Time, total, opTime time.Duration) {
	overhead := total - opTime
	if overhead < 0 {
		overhead = 0
	}
	o.R.Record(Span{
		TraceID: o.Ctx.TraceID,
		CallID:  o.Ctx.CallID,
		Layer:   LayerNetOverhead,
		Net:     netName,
		Name:    "net-overhead",
		Start:   start.Add(o.R.skew),
		Dur:     overhead,
	})
}
