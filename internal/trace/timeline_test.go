package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func timelineSpans(skew time.Duration) []Span {
	base := time.Unix(1000, 0)
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	at := func(d int) time.Time { return base.Add(ms(d)) }
	// Sparse shard clock runs `skew` ahead of the main shard's.
	sat := func(d int) time.Time { return base.Add(ms(d)).Add(skew) }
	return []Span{
		{TraceID: 1, Shard: "main", Layer: LayerRequest, Name: "rank", Start: at(0), Dur: ms(10)},
		{TraceID: 1, Shard: "main", Layer: LayerOp, Kind: "Dense", Name: "fc1", Start: at(1), Dur: ms(3)},
		{TraceID: 1, CallID: 5, Shard: "main", Layer: LayerRPCCall, Name: "rpc1", Start: at(2), Dur: ms(6)},
		// Callee handles the call for 2ms; with 6ms outstanding, one-way
		// network is 2ms each direction, so realigned start = 2 + 2 = 4ms.
		{TraceID: 1, CallID: 5, Shard: "sparse1", Layer: LayerRequest, Name: "sparse.run", Start: sat(100), Dur: ms(2)},
		{TraceID: 1, CallID: 5, Shard: "sparse1", Layer: LayerOp, Kind: "Sparse", Name: "sls", Start: sat(101), Dur: ms(1)},
		// Unrelated trace must be excluded.
		{TraceID: 2, Shard: "main", Layer: LayerRequest, Name: "rank", Start: at(50), Dur: ms(1)},
	}
}

func TestBuildTimelineAlignsSkewedShards(t *testing.T) {
	for _, skew := range []time.Duration{0, time.Minute, -time.Hour} {
		tl, err := BuildTimeline(timelineSpans(skew), 1, "main")
		if err != nil {
			t.Fatal(err)
		}
		// 5 spans belong to trace 1.
		if len(tl.rows) != 5 {
			t.Fatalf("skew=%v: %d rows, want 5", skew, len(tl.rows))
		}
		// The realigned callee request must start inside the caller's
		// outstanding window regardless of skew: at 4ms.
		var calleeStart time.Time
		for _, r := range tl.rows {
			if r.shard == "sparse1" && r.layer == LayerRequest {
				calleeStart = r.start
			}
		}
		want := time.Unix(1000, 0).Add(4 * time.Millisecond)
		if !calleeStart.Equal(want) {
			t.Errorf("skew=%v: callee start %v, want %v", skew, calleeStart, want)
		}
		if tl.Duration() != 10*time.Millisecond {
			t.Errorf("skew=%v: duration %v, want 10ms", skew, tl.Duration())
		}
	}
}

func TestTimelineRowOrdering(t *testing.T) {
	tl, err := BuildTimeline(timelineSpans(0), 1, "main")
	if err != nil {
		t.Fatal(err)
	}
	// Main shard rows first.
	if tl.rows[0].shard != "main" || tl.rows[len(tl.rows)-1].shard != "sparse1" {
		t.Errorf("ordering wrong: first=%s last=%s", tl.rows[0].shard, tl.rows[len(tl.rows)-1].shard)
	}
}

func TestTimelineRender(t *testing.T) {
	tl, err := BuildTimeline(timelineSpans(time.Minute), 1, "main")
	if err != nil {
		t.Fatal(err)
	}
	out := tl.Render(60)
	for _, want := range []string{"trace 1", "main", "sparse1", "rank", "sls", "="} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// The RPC outstanding window renders with '>'.
	if !strings.Contains(out, ">") {
		t.Error("missing RPC window glyph")
	}
	// Every bar line must have identical width (aligned axis).
	var widths []int
	for _, line := range strings.Split(out, "\n") {
		if i := strings.IndexByte(line, '|'); i >= 0 {
			widths = append(widths, len(line))
		}
	}
	for _, w := range widths {
		if w != widths[0] {
			t.Fatalf("misaligned bars: widths %v", widths)
		}
	}
}

func TestBuildTimelineErrors(t *testing.T) {
	if _, err := BuildTimeline(nil, 1, "main"); err == nil {
		t.Error("empty span set should error")
	}
	spans := []Span{{TraceID: 1, Shard: "sparse1", Layer: LayerRequest, Dur: time.Millisecond}}
	if _, err := BuildTimeline(spans, 1, "main"); err == nil {
		t.Error("trace without main-shard spans should error")
	}
}

func TestExportChromeTrace(t *testing.T) {
	tl, err := BuildTimeline(timelineSpans(0), 1, "main")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tl.ExportChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			TS    int64  `json:"ts"`
			Dur   int64  `json:"dur"`
			TID   int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("%d events, want 5", len(doc.TraceEvents))
	}
	tids := map[int]bool{}
	for _, e := range doc.TraceEvents {
		if e.Phase != "X" || e.Dur <= 0 || e.TS < 0 {
			t.Errorf("bad event %+v", e)
		}
		tids[e.TID] = true
	}
	if len(tids) != 2 {
		t.Errorf("expected 2 shard lanes, got %d", len(tids))
	}
}
