package trace

import (
	"testing"
	"time"
)

// A request whose trace holds only the main-shard request span — zero
// RPC calls, zero ops, no net-overhead span — must produce an all-zero
// breakdown (its E2E aside), never a negative residual.
func TestAnalyzeZeroRPCTraceIsZeroBreakdown(t *testing.T) {
	base := time.Now()
	spans := []Span{
		{TraceID: 3, Shard: "main", Layer: LayerRequest, Start: base, Dur: 40 * time.Millisecond},
	}
	bs := Analyze(spans, "main")
	if len(bs) != 1 {
		t.Fatalf("got %d breakdowns, want 1", len(bs))
	}
	b := bs[0]
	if b.E2E != 40*time.Millisecond {
		t.Errorf("E2E = %v", b.E2E)
	}
	for name, d := range map[string]time.Duration{
		"DenseOps": b.DenseOps, "SparseOpsLocal": b.SparseOpsLocal,
		"EmbeddedPortion": b.EmbeddedPortion, "MainSerDe": b.MainSerDe,
		"MainService": b.MainService, "MainNetOverhead": b.MainNetOverhead,
		"BoundOutstanding": b.BoundOutstanding, "BoundNetwork": b.BoundNetwork,
		"BoundSparseOps": b.BoundSparseOps, "BoundSerDe": b.BoundSerDe,
		"BoundService": b.BoundService, "BoundNetOverhead": b.BoundNetOverhead,
		"CPUOps": b.CPUOps, "CPUSerDe": b.CPUSerDe, "CPUService": b.CPUService,
	} {
		if d != 0 {
			t.Errorf("%s = %v, want 0", name, d)
		}
	}
	if b.RPCCalls != 0 || b.BoundShard != "" {
		t.Errorf("unexpected RPC attribution: %+v", b)
	}
}

// When the bounding call's callee-side request span is missing (dropped
// slab, partial trace), the analyzer cannot separate network time from
// callee service time — it must report BoundNetwork 0, not book the
// entire outstanding window as network.
func TestAnalyzeMissingCalleeRequestSpan(t *testing.T) {
	base := time.Now()
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	spans := []Span{
		{TraceID: 9, Shard: "main", Layer: LayerRequest, Start: base, Dur: ms(100)},
		{TraceID: 9, CallID: 21, Shard: "main", Layer: LayerRPCCall, Net: "net1", Start: base, Dur: ms(30)},
		// Callee ops arrived; the callee's LayerRequest span did not.
		{TraceID: 9, CallID: 21, Shard: "sparse1", Layer: LayerOp, Kind: "Sparse", Net: "net1", Start: base, Dur: ms(9)},
	}
	bs := Analyze(spans, "main")
	if len(bs) != 1 {
		t.Fatalf("got %d breakdowns, want 1", len(bs))
	}
	b := bs[0]
	if b.BoundOutstanding != ms(30) {
		t.Errorf("BoundOutstanding = %v, want 30ms", b.BoundOutstanding)
	}
	if b.BoundNetwork != 0 {
		t.Errorf("BoundNetwork = %v, want 0 (callee E2E unknown)", b.BoundNetwork)
	}
	if b.BoundSparseOps != ms(9) {
		t.Errorf("BoundSparseOps = %v, want 9ms", b.BoundSparseOps)
	}
}

// A missing net-overhead span (the framework span the observer emits per
// net) must leave every component non-negative: the categories are sums,
// and absent spans contribute zero, not a negative residual.
func TestAnalyzeMissingNetOverheadSpan(t *testing.T) {
	base := time.Now()
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	spans := []Span{
		{TraceID: 4, Shard: "main", Layer: LayerRequest, Start: base, Dur: ms(50)},
		{TraceID: 4, Shard: "main", Layer: LayerOp, Kind: "Dense", Net: "net1", Name: "fc", Start: base, Dur: ms(48)},
		// No LayerNetOverhead span anywhere — e.g. the slab filled after
		// the operator spans were recorded.
	}
	bs := Analyze(spans, "main")
	if len(bs) != 1 {
		t.Fatalf("got %d breakdowns, want 1", len(bs))
	}
	b := bs[0]
	if b.MainNetOverhead != 0 || b.CPUService != 0 {
		t.Errorf("overhead categories should be 0: netoh=%v service=%v", b.MainNetOverhead, b.CPUService)
	}
	for name, d := range map[string]time.Duration{
		"DenseOps": b.DenseOps, "MainSerDe": b.MainSerDe, "MainService": b.MainService,
		"MainNetOverhead": b.MainNetOverhead, "EmbeddedPortion": b.EmbeddedPortion,
		"BoundNetwork": b.BoundNetwork, "CPUOps": b.CPUOps, "CPUSerDe": b.CPUSerDe,
		"CPUService": b.CPUService,
	} {
		if d < 0 {
			t.Errorf("%s = %v, must be non-negative", name, d)
		}
	}
}

func TestAnalyzeOne(t *testing.T) {
	spans := buildTrace(7, false)
	b, ok := AnalyzeOne(spans, "main")
	if !ok {
		t.Fatal("AnalyzeOne failed on a complete trace")
	}
	if b.TraceID != 7 || b.E2E != 100*time.Millisecond {
		t.Errorf("breakdown = id %d e2e %v", b.TraceID, b.E2E)
	}
	if _, ok := AnalyzeOne(nil, "main"); ok {
		t.Error("AnalyzeOne(nil) should report !ok")
	}
	if _, ok := AnalyzeOne([]Span{{TraceID: 1, Shard: "sparse1", Layer: LayerRequest}}, "main"); ok {
		t.Error("AnalyzeOne without a main request span should report !ok")
	}
}

type captureSink struct {
	spans []Span
}

func (c *captureSink) ConsumeSpan(s Span) { c.spans = append(c.spans, s) }

func TestRecorderSinkTee(t *testing.T) {
	r := NewRecorder("main", 2)
	sink := &captureSink{}
	r.SetSink(sink)
	for i := 0; i < 4; i++ {
		r.Record(Span{TraceID: uint64(i + 1), Layer: LayerOp})
	}
	// The slab drops past capacity 2; the sink sees everything.
	if r.Len() != 2 || r.Drops() != 2 {
		t.Fatalf("slab len=%d drops=%d", r.Len(), r.Drops())
	}
	if len(sink.spans) != 4 {
		t.Fatalf("sink saw %d spans, want 4", len(sink.spans))
	}
	if sink.spans[0].Shard != "main" {
		t.Errorf("sink span shard = %q, want stamped %q", sink.spans[0].Shard, "main")
	}
	r.SetSink(nil)
	r.Record(Span{TraceID: 99})
	if len(sink.spans) != 4 {
		t.Error("sink still attached after SetSink(nil)")
	}
}
