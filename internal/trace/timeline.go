package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Timeline reconstructs the paper's Fig. 3 view of one request: shards as
// horizontal slices, each span drawn against a common time axis, with the
// asynchronous sparse-shard calls visible under the main shard's dense
// work.
//
// Clock skew makes raw cross-shard timestamps incomparable, so callee
// shards are re-aligned into the caller's frame: each remote call's
// callee-side E2E span is centered inside the caller's outstanding window
// (splitting the unobservable network time evenly between directions, the
// standard trick in distributed-trace visualizers).
type Timeline struct {
	TraceID uint64
	rows    []timelineRow
	start   time.Time
	end     time.Time
}

type timelineRow struct {
	shard string
	name  string
	layer Layer
	start time.Time
	dur   time.Duration
}

// BuildTimeline assembles a timeline for one trace from a span dump.
// mainShard anchors the time axis. It returns an error if the trace has
// no main-shard spans.
func BuildTimeline(spans []Span, traceID uint64, mainShard string) (*Timeline, error) {
	var mine []Span
	for _, s := range spans {
		if s.TraceID == traceID {
			mine = append(mine, s)
		}
	}
	if len(mine) == 0 {
		return nil, fmt.Errorf("trace: no spans for trace %d", traceID)
	}

	// Per-shard realignment offsets derived from call windows.
	offsets := computeOffsets(mine, mainShard)

	t := &Timeline{TraceID: traceID}
	for _, s := range mine {
		start := s.Start.Add(offsets[s.Shard])
		t.rows = append(t.rows, timelineRow{
			shard: s.Shard, name: s.Name, layer: s.Layer, start: start, dur: s.Dur,
		})
		if t.start.IsZero() || start.Before(t.start) {
			t.start = start
		}
		if end := start.Add(s.Dur); end.After(t.end) {
			t.end = end
		}
	}
	hasMain := false
	for _, r := range t.rows {
		if r.shard == mainShard {
			hasMain = true
			break
		}
	}
	if !hasMain {
		return nil, fmt.Errorf("trace: trace %d has no %s spans", traceID, mainShard)
	}
	sort.SliceStable(t.rows, func(i, j int) bool {
		if t.rows[i].shard != t.rows[j].shard {
			// Main shard first, then sparse shards in name order.
			if t.rows[i].shard == mainShard {
				return true
			}
			if t.rows[j].shard == mainShard {
				return false
			}
			return t.rows[i].shard < t.rows[j].shard
		}
		return t.rows[i].start.Before(t.rows[j].start)
	})
	return t, nil
}

// computeOffsets derives per-shard clock adjustments: for each remote
// call, center the callee's E2E span within the caller's outstanding
// window. The first observed call per shard wins (jitter between calls is
// far below the skew being corrected).
func computeOffsets(spans []Span, mainShard string) map[string]time.Duration {
	type window struct {
		start time.Time
		dur   time.Duration
	}
	callerWin := make(map[uint64]window)
	for _, s := range spans {
		if s.Layer == LayerRPCCall && s.Shard == mainShard {
			callerWin[s.CallID] = window{start: s.Start, dur: s.Dur}
		}
	}
	offsets := map[string]time.Duration{mainShard: 0}
	for _, s := range spans {
		if s.Layer != LayerRequest || s.Shard == mainShard {
			continue
		}
		if _, done := offsets[s.Shard]; done {
			continue
		}
		w, ok := callerWin[s.CallID]
		if !ok {
			continue
		}
		oneWay := (w.dur - s.Dur) / 2
		if oneWay < 0 {
			oneWay = 0
		}
		wantStart := w.start.Add(oneWay)
		offsets[s.Shard] = wantStart.Sub(s.Start)
	}
	return offsets
}

// Duration returns the timeline's total extent.
func (t *Timeline) Duration() time.Duration { return t.end.Sub(t.start) }

// Render draws the timeline as ASCII art, width columns wide. Layers use
// distinct glyphs: '=' operators, '~' serde, '-' service/request extents,
// '>' RPC outstanding windows, '.' net overhead.
func (t *Timeline) Render(width int) string {
	if width < 20 {
		width = 80
	}
	total := t.Duration()
	if total <= 0 {
		total = time.Nanosecond
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %d — %v total (spans realigned to the main shard's clock)\n", t.TraceID, total.Round(time.Microsecond))
	scale := func(tm time.Time) int {
		f := float64(tm.Sub(t.start)) / float64(total)
		col := int(f * float64(width))
		if col < 0 {
			col = 0
		}
		if col > width {
			col = width
		}
		return col
	}
	lastShard := ""
	for _, r := range t.rows {
		if r.shard != lastShard {
			fmt.Fprintf(&b, "%s\n", strings.Repeat("-", width+28))
			lastShard = r.shard
		}
		lo := scale(r.start)
		hi := scale(r.start.Add(r.dur))
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		bar := strings.Repeat(" ", lo) + strings.Repeat(glyph(r.layer), hi-lo) + strings.Repeat(" ", width-hi)
		fmt.Fprintf(&b, "%-8s %-18s |%s|\n", r.shard, truncateName(r.name, 18), bar)
	}
	return b.String()
}

func glyph(l Layer) string {
	switch l {
	case LayerOp:
		return "="
	case LayerSerDe:
		return "~"
	case LayerRPCCall:
		return ">"
	case LayerNetOverhead:
		return "."
	default:
		return "-"
	}
}

func truncateName(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// chromeEvent is one Chrome trace-event ("Trace Event Format") entry.
type chromeEvent struct {
	Name  string `json:"name"`
	Cat   string `json:"cat"`
	Phase string `json:"ph"`
	TS    int64  `json:"ts"`  // microseconds
	Dur   int64  `json:"dur"` // microseconds
	PID   int    `json:"pid"`
	TID   int    `json:"tid"`
}

// ExportChromeTrace writes the timeline in Chrome's trace-event JSON
// format (load via chrome://tracing or Perfetto) — the "useful trace
// visualization" the paper built its wall-clock ordering for. Each shard
// becomes a thread lane.
func (t *Timeline) ExportChromeTrace(w io.Writer) error {
	tids := make(map[string]int)
	var events []chromeEvent
	for _, r := range t.rows {
		tid, ok := tids[r.shard]
		if !ok {
			tid = len(tids) + 1
			tids[r.shard] = tid
		}
		events = append(events, chromeEvent{
			Name:  r.name,
			Cat:   r.layer.String(),
			Phase: "X",
			TS:    r.start.Sub(t.start).Microseconds(),
			Dur:   r.dur.Microseconds(),
			PID:   1,
			TID:   tid,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}
