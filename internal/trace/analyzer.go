package trace

import (
	"sort"
	"time"
)

// RequestBreakdown is the per-request attribution the analyzer derives
// from raw spans, covering both sides of the paper's Figs. 8 and 9: the
// main-shard E2E latency stack and the bounding sparse shard's embedded
// latency stack, plus aggregate CPU accounting across all shards.
type RequestBreakdown struct {
	TraceID uint64

	// E2E is the end-to-end service latency measured at the main shard.
	E2E time.Duration

	// Main-shard latency stack components (Fig. 8a).
	DenseOps        time.Duration // non-sparse operator time at the main shard
	SparseOpsLocal  time.Duration // in-line SLS time at the main shard (singular only)
	EmbeddedPortion time.Duration // singular: SparseOpsLocal; distributed: Σ per-net bounding RPC outstanding
	MainSerDe       time.Duration
	MainService     time.Duration
	MainNetOverhead time.Duration // includes async RPC scheduling cost

	// RPCCalls counts remote calls issued for this request.
	RPCCalls int

	// Bounding sparse-shard embedded stack (Fig. 8b): attribution inside
	// the slowest remote call.
	BoundShard       string
	BoundOutstanding time.Duration // outstanding at main for the bounding call
	BoundNetwork     time.Duration // outstanding − sparse-shard E2E (skew-immune)
	BoundSparseOps   time.Duration
	BoundSerDe       time.Duration
	BoundService     time.Duration
	BoundNetOverhead time.Duration

	// Aggregate CPU time across all shards (Fig. 9 categories).
	CPUOps     time.Duration // all operator execution, all shards
	CPUSerDe   time.Duration // all serialization, all shards
	CPUService time.Duration // service boilerplate + net overhead, all shards

	// PerShardOpTime is total operator time per shard (Figs. 10–12, 15).
	PerShardOpTime map[string]time.Duration
	// PerShardNetOpTime splits operator time per shard per net (Fig. 10).
	PerShardNetOpTime map[string]map[string]time.Duration
}

// TotalCPU returns the summed CPU attribution across categories.
func (b *RequestBreakdown) TotalCPU() time.Duration {
	return b.CPUOps + b.CPUSerDe + b.CPUService
}

// Analyze reconstructs per-request breakdowns from a raw span dump.
// mainShard names the shard whose LayerRequest span is the request E2E.
// Traces missing a main-shard request span are skipped (partial traces
// from warmup or failures).
func Analyze(spans []Span, mainShard string) []RequestBreakdown {
	byTrace := make(map[uint64][]Span)
	for _, s := range spans {
		byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
	}
	ids := make([]uint64, 0, len(byTrace))
	for id := range byTrace {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	out := make([]RequestBreakdown, 0, len(ids))
	for _, id := range ids {
		if b, ok := analyzeTrace(id, byTrace[id], mainShard); ok {
			out = append(out, b)
		}
	}
	return out
}

// AnalyzeOne derives the breakdown for a single trace's spans (all
// sharing one trace ID — the live tracer's per-trace buffers). It
// reports ok=false when the spans are empty or lack the main-shard
// request span that anchors the attribution.
func AnalyzeOne(spans []Span, mainShard string) (RequestBreakdown, bool) {
	if len(spans) == 0 {
		return RequestBreakdown{}, false
	}
	return analyzeTrace(spans[0].TraceID, spans, mainShard)
}

func analyzeTrace(id uint64, spans []Span, mainShard string) (RequestBreakdown, bool) {
	b := RequestBreakdown{
		TraceID:           id,
		PerShardOpTime:    make(map[string]time.Duration),
		PerShardNetOpTime: make(map[string]map[string]time.Duration),
	}
	// Index sparse-side spans by call id for bounding-call attribution.
	calleeByCall := make(map[uint64][]Span)
	// Per-net bounding outstanding time at the main shard.
	perNetBound := make(map[string]Span)

	foundE2E := false
	for _, s := range spans {
		atMain := s.Shard == mainShard
		switch s.Layer {
		case LayerRequest:
			if atMain {
				b.E2E = s.Dur
				foundE2E = true
			} else {
				calleeByCall[s.CallID] = append(calleeByCall[s.CallID], s)
			}
		case LayerOp:
			if s.Kind == "Wait" {
				// Synchronization on asynchronous results: this time is
				// the embedded portion, measured via LayerRPCCall spans;
				// counting it as operator compute would double-book it.
				continue
			}
			b.PerShardOpTime[s.Shard] += s.Dur
			netMap := b.PerShardNetOpTime[s.Shard]
			if netMap == nil {
				netMap = make(map[string]time.Duration)
				b.PerShardNetOpTime[s.Shard] = netMap
			}
			netMap[s.Net] += s.Dur
			b.CPUOps += s.Dur
			if atMain {
				switch s.Kind {
				case "Sparse":
					b.SparseOpsLocal += s.Dur
				case "RPC":
					// The RPC op's span is dominated by request
					// serialization (the issue itself is a queue push):
					// book it as serde, matching Fig. 8a's categories.
					b.MainSerDe += s.Dur
					b.CPUSerDe += s.Dur
					b.CPUOps -= s.Dur // reclassified
				default:
					b.DenseOps += s.Dur
				}
			} else {
				calleeByCall[s.CallID] = append(calleeByCall[s.CallID], s)
			}
		case LayerSerDe:
			b.CPUSerDe += s.Dur
			if atMain {
				b.MainSerDe += s.Dur
			} else {
				calleeByCall[s.CallID] = append(calleeByCall[s.CallID], s)
			}
		case LayerService:
			b.CPUService += s.Dur
			if atMain {
				b.MainService += s.Dur
			} else {
				calleeByCall[s.CallID] = append(calleeByCall[s.CallID], s)
			}
		case LayerNetOverhead:
			b.CPUService += s.Dur
			if atMain {
				b.MainNetOverhead += s.Dur
			} else {
				calleeByCall[s.CallID] = append(calleeByCall[s.CallID], s)
			}
		case LayerRPCCall:
			if atMain {
				b.RPCCalls++
				if cur, ok := perNetBound[s.Net]; !ok || s.Dur > cur.Dur {
					perNetBound[s.Net] = s
				}
			}
		}
	}
	if !foundE2E {
		return b, false
	}

	// Embedded portion: singular requests pool in-line; distributed
	// requests wait on the slowest call of each (sequential) net.
	if len(perNetBound) == 0 {
		b.EmbeddedPortion = b.SparseOpsLocal
	} else {
		var bounding Span
		for _, s := range perNetBound {
			b.EmbeddedPortion += s.Dur
			if s.Dur > bounding.Dur {
				bounding = s
			}
		}
		b.BoundOutstanding = bounding.Dur
		// Attribute inside the bounding call using the callee's spans.
		var calleeE2E time.Duration
		sawCalleeE2E := false
		for _, s := range calleeByCall[bounding.CallID] {
			switch s.Layer {
			case LayerRequest:
				calleeE2E = s.Dur
				b.BoundShard = s.Shard
				sawCalleeE2E = true
			case LayerOp:
				b.BoundSparseOps += s.Dur
			case LayerSerDe:
				b.BoundSerDe += s.Dur
			case LayerService:
				b.BoundService += s.Dur
			case LayerNetOverhead:
				b.BoundNetOverhead += s.Dur
			}
		}
		// Network time is outstanding − callee E2E, and only meaningful
		// when the callee's request span actually arrived: with it missing
		// (dropped slab, partial trace) the subtraction would book the
		// whole outstanding window as network.
		if sawCalleeE2E {
			if net := bounding.Dur - calleeE2E; net > 0 {
				b.BoundNetwork = net
			}
		}
	}
	return b, true
}

// Component extracts a named duration from a breakdown; the experiment
// drivers use it to compute per-component quantiles declaratively.
type Component func(*RequestBreakdown) time.Duration

// Standard component extractors.
var (
	CompE2E             Component = func(b *RequestBreakdown) time.Duration { return b.E2E }
	CompDenseOps        Component = func(b *RequestBreakdown) time.Duration { return b.DenseOps }
	CompEmbedded        Component = func(b *RequestBreakdown) time.Duration { return b.EmbeddedPortion }
	CompMainSerDe       Component = func(b *RequestBreakdown) time.Duration { return b.MainSerDe }
	CompMainService     Component = func(b *RequestBreakdown) time.Duration { return b.MainService }
	CompMainNetOverhead Component = func(b *RequestBreakdown) time.Duration { return b.MainNetOverhead }
	CompTotalCPU        Component = func(b *RequestBreakdown) time.Duration { return b.TotalCPU() }
	CompBoundNetwork    Component = func(b *RequestBreakdown) time.Duration { return b.BoundNetwork }
	CompBoundSparseOps  Component = func(b *RequestBreakdown) time.Duration { return b.BoundSparseOps }
	CompBoundSerDe      Component = func(b *RequestBreakdown) time.Duration { return b.BoundSerDe }
	CompBoundService    Component = func(b *RequestBreakdown) time.Duration { return b.BoundService }
	CompBoundNetOh      Component = func(b *RequestBreakdown) time.Duration { return b.BoundNetOverhead }
)

// ComponentSeconds maps a component over breakdowns, in seconds.
func ComponentSeconds(bs []RequestBreakdown, c Component) []float64 {
	out := make([]float64, len(bs))
	for i := range bs {
		out[i] = c(&bs[i]).Seconds()
	}
	return out
}
