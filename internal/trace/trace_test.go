package trace

import (
	"sync"
	"testing"
	"time"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder("main", 10)
	if r.Shard() != "main" || r.Len() != 0 {
		t.Fatal("fresh recorder wrong")
	}
	r.Record(Span{TraceID: 1, Layer: LayerOp, Name: "fc"})
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	spans := r.Spans()
	if spans[0].Shard != "main" {
		t.Error("Record must stamp the shard name")
	}
	r.Reset()
	if r.Len() != 0 || r.Drops() != 0 {
		t.Error("Reset should clear state")
	}
}

func TestRecorderDropsWhenFull(t *testing.T) {
	r := NewRecorder("s", 2)
	for i := 0; i < 5; i++ {
		r.Record(Span{TraceID: uint64(i)})
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
	if r.Drops() != 3 {
		t.Errorf("Drops = %d, want 3", r.Drops())
	}
}

func TestRecorderConcurrentAppend(t *testing.T) {
	const n = 64
	r := NewRecorder("s", n*8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				r.Record(Span{TraceID: uint64(g*n + i)})
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != n*8 || r.Drops() != 0 {
		t.Fatalf("Len=%d Drops=%d", r.Len(), r.Drops())
	}
	seen := make(map[uint64]bool)
	for _, s := range r.Spans() {
		if seen[s.TraceID] {
			t.Fatalf("duplicate span %d — racing appends clobbered slots", s.TraceID)
		}
		seen[s.TraceID] = true
	}
}

func TestRecorderClockSkew(t *testing.T) {
	r := NewRecorder("s", 1)
	r.SetClockSkew(time.Hour)
	now := r.Now()
	if d := time.Until(now); d < 59*time.Minute {
		t.Errorf("skewed Now should be ~1h ahead, delta %v", d)
	}
}

func TestIDAllocator(t *testing.T) {
	var a IDAllocator
	id1, id2 := a.NewTraceID(), a.NewTraceID()
	if id1 == 0 || id1 == id2 {
		t.Errorf("ids must be unique and non-zero: %d %d", id1, id2)
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	r1, r2 := NewRecorder("a", 4), NewRecorder("b", 4)
	c.Attach(r1)
	c.Attach(r2)
	r1.Record(Span{TraceID: 1})
	r2.Record(Span{TraceID: 2})
	all := c.Gather()
	if len(all) != 2 {
		t.Fatalf("Gather = %d spans", len(all))
	}
	c.Reset()
	if len(c.Gather()) != 0 {
		t.Error("Reset should clear recorders")
	}
	if c.TotalDrops() != 0 {
		t.Error("TotalDrops should be 0")
	}
}

func TestLayerString(t *testing.T) {
	if LayerSerDe.String() != "RPC Ser/De" || Layer(99).String() != "Unknown" {
		t.Error("layer names wrong")
	}
}

func TestContextString(t *testing.T) {
	if (Context{TraceID: 1, CallID: 2}).String() == "" {
		t.Error("context string empty")
	}
}

// buildTrace fabricates the span set of one distributed request:
// main shard with dense ops and two RPC calls to different nets' shards.
func buildTrace(traceID uint64, skewed bool) []Span {
	base := time.Now()
	sparseStart := base
	if skewed {
		// Sparse shard clock is 1 minute behind: timestamps diverge but
		// durations do not.
		sparseStart = base.Add(-time.Minute)
	}
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	return []Span{
		// Main shard.
		{TraceID: traceID, Shard: "main", Layer: LayerRequest, Start: base, Dur: ms(100)},
		{TraceID: traceID, Shard: "main", Layer: LayerSerDe, Start: base, Dur: ms(5)},
		{TraceID: traceID, Shard: "main", Layer: LayerService, Start: base, Dur: ms(3)},
		{TraceID: traceID, Shard: "main", Layer: LayerNetOverhead, Net: "net1", Start: base, Dur: ms(2)},
		{TraceID: traceID, Shard: "main", Layer: LayerOp, Kind: "Dense", Net: "net1", Name: "fc1", Start: base, Dur: ms(40)},
		{TraceID: traceID, Shard: "main", Layer: LayerOp, Kind: "RPC", Net: "net1", Name: "rpc-issue", Start: base, Dur: ms(1)},
		// Two RPC calls in net1; call 11 is bounding (30ms vs 10ms).
		{TraceID: traceID, CallID: 11, Shard: "main", Layer: LayerRPCCall, Net: "net1", Start: base, Dur: ms(30)},
		{TraceID: traceID, CallID: 12, Shard: "main", Layer: LayerRPCCall, Net: "net1", Start: base, Dur: ms(10)},
		// One call in net2 (sequential net): adds to embedded portion.
		{TraceID: traceID, CallID: 13, Shard: "main", Layer: LayerRPCCall, Net: "net2", Start: base, Dur: ms(8)},
		// Bounding sparse shard (call 11), possibly skewed clock.
		{TraceID: traceID, CallID: 11, Shard: "sparse1", Layer: LayerRequest, Start: sparseStart, Dur: ms(22)},
		{TraceID: traceID, CallID: 11, Shard: "sparse1", Layer: LayerSerDe, Start: sparseStart, Dur: ms(4)},
		{TraceID: traceID, CallID: 11, Shard: "sparse1", Layer: LayerService, Start: sparseStart, Dur: ms(2)},
		{TraceID: traceID, CallID: 11, Shard: "sparse1", Layer: LayerNetOverhead, Net: "net1", Start: sparseStart, Dur: ms(1)},
		{TraceID: traceID, CallID: 11, Shard: "sparse1", Layer: LayerOp, Kind: "Sparse", Net: "net1", Name: "sls", Start: sparseStart, Dur: ms(9)},
		// Non-bounding shard spans should not contaminate bound stats.
		{TraceID: traceID, CallID: 12, Shard: "sparse2", Layer: LayerRequest, Start: sparseStart, Dur: ms(7)},
		{TraceID: traceID, CallID: 12, Shard: "sparse2", Layer: LayerOp, Kind: "Sparse", Net: "net1", Name: "sls", Start: sparseStart, Dur: ms(3)},
		{TraceID: traceID, CallID: 13, Shard: "sparse3", Layer: LayerRequest, Start: sparseStart, Dur: ms(6)},
		{TraceID: traceID, CallID: 13, Shard: "sparse3", Layer: LayerOp, Kind: "Sparse", Net: "net2", Name: "sls", Start: sparseStart, Dur: ms(2)},
	}
}

func TestAnalyzeDistributedRequest(t *testing.T) {
	for _, skewed := range []bool{false, true} {
		bs := Analyze(buildTrace(7, skewed), "main")
		if len(bs) != 1 {
			t.Fatalf("skew=%v: got %d breakdowns", skewed, len(bs))
		}
		b := bs[0]
		ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
		if b.E2E != ms(100) {
			t.Errorf("E2E = %v", b.E2E)
		}
		if b.DenseOps != ms(40) {
			t.Errorf("DenseOps = %v", b.DenseOps)
		}
		// Embedded = net1 bounding (30) + net2 bounding (8).
		if b.EmbeddedPortion != ms(38) {
			t.Errorf("EmbeddedPortion = %v, want 38ms", b.EmbeddedPortion)
		}
		if b.RPCCalls != 3 {
			t.Errorf("RPCCalls = %d, want 3", b.RPCCalls)
		}
		if b.BoundShard != "sparse1" || b.BoundOutstanding != ms(30) {
			t.Errorf("bounding call wrong: %s %v", b.BoundShard, b.BoundOutstanding)
		}
		// Network = outstanding(30) − sparse E2E(22) = 8ms, regardless of
		// clock skew — the paper's skew-immune estimator.
		if b.BoundNetwork != ms(8) {
			t.Errorf("skew=%v: BoundNetwork = %v, want 8ms", skewed, b.BoundNetwork)
		}
		if b.BoundSparseOps != ms(9) || b.BoundSerDe != ms(4) || b.BoundService != ms(2) || b.BoundNetOverhead != ms(1) {
			t.Errorf("bound stack wrong: %+v", b)
		}
		// RPC issue op (1ms) reclassified into MainSerDe (5+1).
		if b.MainSerDe != ms(6) {
			t.Errorf("MainSerDe = %v, want 6ms", b.MainSerDe)
		}
		if b.MainNetOverhead != ms(2) {
			t.Errorf("MainNetOverhead = %v, want 2ms", b.MainNetOverhead)
		}
		// CPU ops: 40 dense + 9 + 3 + 2 sparse = 54 (RPC-issue excluded).
		if b.CPUOps != ms(54) {
			t.Errorf("CPUOps = %v, want 54ms", b.CPUOps)
		}
		if b.PerShardOpTime["sparse1"] != ms(9) || b.PerShardOpTime["main"] != ms(41) {
			t.Errorf("per-shard op time: %v", b.PerShardOpTime)
		}
		if b.PerShardNetOpTime["sparse3"]["net2"] != ms(2) {
			t.Errorf("per-shard-net op time: %v", b.PerShardNetOpTime)
		}
	}
}

func TestAnalyzeSingularRequest(t *testing.T) {
	base := time.Now()
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	spans := []Span{
		{TraceID: 1, Shard: "main", Layer: LayerRequest, Start: base, Dur: ms(50)},
		{TraceID: 1, Shard: "main", Layer: LayerOp, Kind: "Dense", Name: "fc", Start: base, Dur: ms(30)},
		{TraceID: 1, Shard: "main", Layer: LayerOp, Kind: "Sparse", Name: "sls", Start: base, Dur: ms(5)},
	}
	bs := Analyze(spans, "main")
	if len(bs) != 1 {
		t.Fatal("expected one breakdown")
	}
	b := bs[0]
	if b.EmbeddedPortion != ms(5) || b.SparseOpsLocal != ms(5) {
		t.Errorf("singular embedded portion = %v", b.EmbeddedPortion)
	}
	if b.RPCCalls != 0 || b.BoundShard != "" {
		t.Errorf("singular should have no RPC attribution: %+v", b)
	}
}

func TestAnalyzeSkipsPartialTraces(t *testing.T) {
	spans := []Span{
		{TraceID: 5, Shard: "sparse1", Layer: LayerRequest, Dur: time.Millisecond},
	}
	if bs := Analyze(spans, "main"); len(bs) != 0 {
		t.Errorf("trace without main E2E should be skipped, got %d", len(bs))
	}
}

func TestAnalyzeMultipleTracesSorted(t *testing.T) {
	var spans []Span
	for _, id := range []uint64{42, 7, 19} {
		spans = append(spans, Span{TraceID: id, Shard: "main", Layer: LayerRequest, Dur: time.Duration(id)})
	}
	bs := Analyze(spans, "main")
	if len(bs) != 3 || bs[0].TraceID != 7 || bs[2].TraceID != 42 {
		t.Errorf("breakdowns should be sorted by trace id: %v", bs)
	}
}

func TestComponentSeconds(t *testing.T) {
	bs := []RequestBreakdown{{E2E: time.Second}, {E2E: 2 * time.Second}}
	xs := ComponentSeconds(bs, CompE2E)
	if len(xs) != 2 || xs[0] != 1 || xs[1] != 2 {
		t.Errorf("ComponentSeconds = %v", xs)
	}
}

func TestTotalCPU(t *testing.T) {
	b := RequestBreakdown{CPUOps: 1, CPUSerDe: 2, CPUService: 3}
	if b.TotalCPU() != 6 {
		t.Errorf("TotalCPU = %v", b.TotalCPU())
	}
}
