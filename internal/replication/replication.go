// Package replication models the data-center serving economics of
// Section VII-C: inference servers are replicated to meet aggregate QPS,
// and because a singular deployment couples the compute-hungry dense
// layers to the memory-hungry embedding tables, every compute-driven
// replica duplicates hundreds of gigabytes of tables it barely touches
// ("the majority of compute touches less than 3% of the model's memory
// footprint"). Distributed inference decouples the two: main-shard
// replicas carry only dense parameters, sparse-shard replicas are scaled
// by their own (small) load, and the advisor quantifies the resulting
// fleet memory savings.
package replication

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/model"
	"repro/internal/sharding"
)

// ServerSpec describes one server class's provisioning-relevant capacity.
type ServerSpec struct {
	// Name labels the class ("SC-Large").
	Name string
	// Cores is the number of usable cores.
	Cores int
	// TargetUtilization is the fraction of core-seconds the planner may
	// commit (head-room for diurnal peaks and tail tolerance).
	TargetUtilization float64
	// MemoryBytes is usable DRAM.
	MemoryBytes int64
}

// Load captures one deployment's measured per-request costs.
type Load struct {
	// MainCPUPerRequest is CPU consumed at the main shard per request
	// (dense ops + serde + service).
	MainCPUPerRequest time.Duration
	// SparseCPUPerRequest is CPU per request per sparse shard, indexed by
	// shard number − 1; empty for singular deployments.
	SparseCPUPerRequest []time.Duration
}

// Advice is a provisioning plan for one deployment at a target QPS.
type Advice struct {
	Plan      *sharding.Plan
	TargetQPS float64

	// MainReplicas is the number of main-shard (or singular) servers.
	MainReplicas int
	// SparseReplicas holds per-shard replica counts (empty for singular).
	SparseReplicas []int
	// TotalServers across all roles.
	TotalServers int
	// TotalMemoryBytes is the fleet-wide model memory (parameters only).
	TotalMemoryBytes int64
	// MemoryCapBound reports whether any replica count was forced up by
	// memory capacity rather than compute (a capacity-bound fleet).
	MemoryCapBound bool
}

// Advise computes replica counts for a deployment. For singular plans the
// whole model replicates together; for distributed plans the main shard
// replicates on dense load and each sparse shard on its own load, with
// every role holding only its own parameters — the decoupling the paper
// credits with improved serving efficiency.
func Advise(m *model.Model, plan *sharding.Plan, load Load, spec ServerSpec, targetQPS float64) (*Advice, error) {
	if targetQPS <= 0 {
		return nil, fmt.Errorf("replication: target QPS %v must be positive", targetQPS)
	}
	if spec.Cores <= 0 || spec.TargetUtilization <= 0 || spec.TargetUtilization > 1 {
		return nil, fmt.Errorf("replication: invalid server spec %+v", spec)
	}
	if plan.IsDistributed() && len(load.SparseCPUPerRequest) != plan.NumShards {
		return nil, fmt.Errorf("replication: %d sparse loads for %d shards", len(load.SparseCPUPerRequest), plan.NumShards)
	}
	capacityPerServer := float64(spec.Cores) * spec.TargetUtilization // core-seconds per second

	adv := &Advice{Plan: plan, TargetQPS: targetQPS}

	computeReplicas := func(perReq time.Duration) int {
		demand := targetQPS * perReq.Seconds()
		n := int(math.Ceil(demand / capacityPerServer))
		if n < 1 {
			n = 1
		}
		return n
	}

	if !plan.IsDistributed() {
		adv.MainReplicas = computeReplicas(load.MainCPUPerRequest)
		// The whole model must also fit; if it cannot fit on one server
		// the singular deployment is simply infeasible — which is the
		// problem the paper exists to solve.
		if m.TotalBytes() > spec.MemoryBytes {
			return nil, fmt.Errorf("replication: singular model (%d bytes) exceeds %s memory (%d bytes)",
				m.TotalBytes(), spec.Name, spec.MemoryBytes)
		}
		adv.TotalServers = adv.MainReplicas
		adv.TotalMemoryBytes = int64(adv.MainReplicas) * m.TotalBytes()
		return adv, nil
	}

	adv.MainReplicas = computeReplicas(load.MainCPUPerRequest)
	adv.TotalMemoryBytes = int64(adv.MainReplicas) * m.DenseBytes()
	adv.TotalServers = adv.MainReplicas
	for i := range plan.Shards {
		a := &plan.Shards[i]
		bytes := sharding.ShardCapacityBytes(&m.Config, a)
		if bytes > spec.MemoryBytes {
			return nil, fmt.Errorf("replication: shard %d (%d bytes) exceeds %s memory", a.Shard, bytes, spec.Name)
		}
		n := computeReplicas(load.SparseCPUPerRequest[i])
		adv.SparseReplicas = append(adv.SparseReplicas, n)
		adv.TotalServers += n
		adv.TotalMemoryBytes += int64(n) * bytes
	}
	return adv, nil
}

// MemoryPerQPS is the fleet memory cost normalized by throughput — the
// efficiency metric the Section VII-C discussion turns on.
func (a *Advice) MemoryPerQPS() float64 {
	return float64(a.TotalMemoryBytes) / a.TargetQPS
}

// Render prints the advice as a provisioning table.
func (a *Advice) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s @ %.0f QPS: %d main replica(s)", a.Plan.Name(), a.TargetQPS, a.MainReplicas)
	if len(a.SparseReplicas) > 0 {
		fmt.Fprintf(&b, ", sparse replicas %v", a.SparseReplicas)
	}
	fmt.Fprintf(&b, " => %d servers, %.1f MiB fleet model memory (%.2f KiB per QPS)\n",
		a.TotalServers, float64(a.TotalMemoryBytes)/(1<<20), a.MemoryPerQPS()/1024)
	return b.String()
}

// Compare renders singular-vs-distributed advice side by side and the
// headline ratio.
func Compare(singular, distributed *Advice) string {
	var b strings.Builder
	b.WriteString(singular.Render())
	b.WriteString(distributed.Render())
	if distributed.TotalMemoryBytes > 0 {
		ratio := float64(singular.TotalMemoryBytes) / float64(distributed.TotalMemoryBytes)
		fmt.Fprintf(&b, "distributed serving cuts fleet model memory %.1fx at equal QPS\n", ratio)
	}
	return b.String()
}
