package replication

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rpc"
)

// fakeCaller completes calls after a fixed delay, tagging responses so
// tests can see which replica answered.
type fakeCaller struct {
	tag   byte
	delay time.Duration
	err   error
	calls atomic.Int64
}

func (f *fakeCaller) Go(req *rpc.Request) *rpc.Call {
	f.calls.Add(1)
	call := &rpc.Call{Req: req, Done: make(chan struct{})}
	go func() {
		if f.delay > 0 {
			time.Sleep(f.delay)
		}
		if f.err != nil {
			call.Err = f.err
		} else {
			call.Resp = &rpc.Response{CallID: req.CallID, Body: []byte{f.tag}}
		}
		close(call.Done)
	}()
	return call
}

func (f *fakeCaller) Close() error { return nil }

func hedged(t *testing.T, delay time.Duration, replicas ...rpc.Caller) *Hedged {
	t.Helper()
	h, err := NewHedged(replicas, delay)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHedgeFastPrimaryNoHedge(t *testing.T) {
	primary := &fakeCaller{tag: 1}
	replica := &fakeCaller{tag: 2}
	h := hedged(t, 50*time.Millisecond, primary, replica)
	resp, err := h.CallSync(&rpc.Request{Method: "m", CallID: 7})
	if err != nil || resp.Body[0] != 1 {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
	if h.Hedges() != 0 || replica.calls.Load() != 0 {
		t.Errorf("fast primary must not hedge (hedges=%d)", h.Hedges())
	}
}

func TestHedgeCutsSlowPrimary(t *testing.T) {
	primary := &fakeCaller{tag: 1, delay: 100 * time.Millisecond}
	replica := &fakeCaller{tag: 2}
	h := hedged(t, 5*time.Millisecond, primary, replica)
	start := time.Now()
	resp, err := h.CallSync(&rpc.Request{Method: "m", CallID: 7})
	if err != nil || resp.Body[0] != 2 {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
	if elapsed := time.Since(start); elapsed > 60*time.Millisecond {
		t.Errorf("hedged call took %v; the replica should have answered first", elapsed)
	}
	if h.Hedges() != 1 || h.Wins() != 1 {
		t.Errorf("hedges = %d wins = %d, want 1/1", h.Hedges(), h.Wins())
	}
}

func TestHedgeFailsOverImmediately(t *testing.T) {
	primary := &fakeCaller{tag: 1, err: errors.New("shard down")}
	replica := &fakeCaller{tag: 2}
	// Delay far beyond the test: only failover can reach the replica.
	h := hedged(t, time.Hour, primary, replica)
	resp, err := h.CallSync(&rpc.Request{Method: "m", CallID: 7})
	if err != nil || resp.Body[0] != 2 {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
	if h.Hedges() != 1 {
		t.Errorf("hedges = %d, want 1", h.Hedges())
	}
}

func TestHedgeSurfacesPrimaryErrorWhenAllFail(t *testing.T) {
	primErr := errors.New("primary down")
	primary := &fakeCaller{tag: 1, delay: 10 * time.Millisecond, err: primErr}
	replica := &fakeCaller{tag: 2, err: errors.New("replica down")}
	h := hedged(t, time.Millisecond, primary, replica)
	_, err := h.CallSync(&rpc.Request{Method: "m", CallID: 7})
	if !errors.Is(err, primErr) {
		t.Fatalf("err = %v, want primary's", err)
	}
}

func TestHedgeSingleReplicaPassthrough(t *testing.T) {
	primary := &fakeCaller{tag: 1, delay: time.Millisecond}
	h := hedged(t, time.Microsecond, primary)
	resp, err := h.CallSync(&rpc.Request{Method: "m", CallID: 7})
	if err != nil || resp.Body[0] != 1 {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
	if h.Hedges() != 0 {
		t.Errorf("single replica cannot hedge")
	}
}

func TestNewHedgedRejectsEmpty(t *testing.T) {
	if _, err := NewHedged(nil, time.Millisecond); err == nil {
		t.Fatal("empty replica set must be rejected")
	}
}
