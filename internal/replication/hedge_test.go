package replication

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rpc"
)

// fakeCaller completes calls after a fixed delay, tagging responses so
// tests can see which replica answered.
type fakeCaller struct {
	tag   byte
	delay time.Duration
	err   error
	calls atomic.Int64
}

func (f *fakeCaller) Go(req *rpc.Request) *rpc.Call {
	f.calls.Add(1)
	call := &rpc.Call{Req: req, Done: make(chan struct{})}
	go func() {
		if f.delay > 0 {
			time.Sleep(f.delay)
		}
		if f.err != nil {
			call.Err = f.err
		} else {
			call.Resp = &rpc.Response{CallID: req.CallID, Body: []byte{f.tag}}
		}
		close(call.Done)
	}()
	return call
}

func (f *fakeCaller) Close() error { return nil }

func hedged(t *testing.T, delay time.Duration, replicas ...rpc.Caller) *Hedged {
	t.Helper()
	h, err := NewHedged(replicas, delay)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHedgeFastPrimaryNoHedge(t *testing.T) {
	primary := &fakeCaller{tag: 1}
	replica := &fakeCaller{tag: 2}
	h := hedged(t, 50*time.Millisecond, primary, replica)
	resp, err := h.CallSync(&rpc.Request{Method: "m", CallID: 7})
	if err != nil || resp.Body[0] != 1 {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
	if h.Hedges() != 0 || replica.calls.Load() != 0 {
		t.Errorf("fast primary must not hedge (hedges=%d)", h.Hedges())
	}
}

func TestHedgeCutsSlowPrimary(t *testing.T) {
	primary := &fakeCaller{tag: 1, delay: 100 * time.Millisecond}
	replica := &fakeCaller{tag: 2}
	h := hedged(t, 5*time.Millisecond, primary, replica)
	start := time.Now()
	resp, err := h.CallSync(&rpc.Request{Method: "m", CallID: 7})
	if err != nil || resp.Body[0] != 2 {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
	if elapsed := time.Since(start); elapsed > 60*time.Millisecond {
		t.Errorf("hedged call took %v; the replica should have answered first", elapsed)
	}
	if h.Hedges() != 1 || h.Wins() != 1 {
		t.Errorf("hedges = %d wins = %d, want 1/1", h.Hedges(), h.Wins())
	}
}

func TestHedgeFailsOverImmediately(t *testing.T) {
	primary := &fakeCaller{tag: 1, err: errors.New("shard down")}
	replica := &fakeCaller{tag: 2}
	// Delay far beyond the test: only failover can reach the replica.
	h := hedged(t, time.Hour, primary, replica)
	resp, err := h.CallSync(&rpc.Request{Method: "m", CallID: 7})
	if err != nil || resp.Body[0] != 2 {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
	// Counter-semantics regression: a failover re-issue is not a hedge —
	// counting it under Hedges() inflated the hedge rate the experiments
	// report.
	if h.Hedges() != 0 {
		t.Errorf("hedges = %d, want 0 (failover must not count as hedging)", h.Hedges())
	}
	if h.Failovers() != 1 || h.FailoverAttempts() != 1 {
		t.Errorf("failovers = %d attempts = %d, want 1/1", h.Failovers(), h.FailoverAttempts())
	}
}

func TestHedgeSurfacesPrimaryErrorWhenAllFail(t *testing.T) {
	primErr := errors.New("primary down")
	primary := &fakeCaller{tag: 1, delay: 10 * time.Millisecond, err: primErr}
	replica := &fakeCaller{tag: 2, err: errors.New("replica down")}
	h := hedged(t, time.Millisecond, primary, replica)
	_, err := h.CallSync(&rpc.Request{Method: "m", CallID: 7})
	if !errors.Is(err, primErr) {
		t.Fatalf("err = %v, want primary's", err)
	}
}

func TestHedgeSingleReplicaPassthrough(t *testing.T) {
	primary := &fakeCaller{tag: 1, delay: time.Millisecond}
	h := hedged(t, time.Microsecond, primary)
	resp, err := h.CallSync(&rpc.Request{Method: "m", CallID: 7})
	if err != nil || resp.Body[0] != 1 {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
	if h.Hedges() != 0 {
		t.Errorf("single replica cannot hedge")
	}
}

func TestNewHedgedRejectsEmpty(t *testing.T) {
	if _, err := NewHedged(nil, time.Millisecond); err == nil {
		t.Fatal("empty replica set must be rejected")
	}
}

// TestFailoverSurfacesPrimaryError is the failover-path regression: when
// the primary fails outright and the failover replica also fails, the
// caller must see the primary's error (matching the documented
// primary-error-wins contract of the race path), not the replica's.
func TestFailoverSurfacesPrimaryError(t *testing.T) {
	primErr := errors.New("primary down")
	primary := &fakeCaller{tag: 1, err: primErr}
	replica := &fakeCaller{tag: 2, err: errors.New("replica down")}
	// Delay far beyond the test: only the immediate failover path runs.
	h := hedged(t, time.Hour, primary, replica)
	_, err := h.CallSync(&rpc.Request{Method: "m", CallID: 7})
	if !errors.Is(err, primErr) {
		t.Fatalf("err = %v, want primary's", err)
	}
	if h.Failovers() != 1 {
		t.Errorf("failovers = %d, want 1", h.Failovers())
	}
}

// TestFailoverRotatesThroughReplicas: with >2 replicas, a failover whose
// first target also fails must try the remaining replicas before giving
// up.
func TestFailoverRotatesThroughReplicas(t *testing.T) {
	// Pin the rotation so the walk visits r2, r3, then r1: only the
	// last-visited replica is healthy, so success requires visiting every
	// remaining replica.
	primary := &fakeCaller{tag: 1, err: errors.New("primary down")}
	r1 := &fakeCaller{tag: 2}
	r2 := &fakeCaller{tag: 3, err: errors.New("replica 2 down")}
	r3 := &fakeCaller{tag: 4, err: errors.New("replica 3 down")}
	h := hedged(t, time.Hour, primary, r1, r2, r3)
	h.next.Store(1) // failover walk starts at index 2
	resp, err := h.CallSync(&rpc.Request{Method: "m", CallID: 7})
	if err != nil || resp.Body[0] != 2 {
		t.Fatalf("resp = %+v, %v; want replica 2's answer", resp, err)
	}
	if r1.calls.Load() != 1 || r2.calls.Load() != 1 || r3.calls.Load() != 1 {
		t.Errorf("rotation calls = %d/%d/%d, want 1/1/1",
			r1.calls.Load(), r2.calls.Load(), r3.calls.Load())
	}
	// All replicas failing still surfaces the primary's error.
	primErr := errors.New("primary down")
	allDown := hedged(t, time.Hour,
		&fakeCaller{tag: 1, err: primErr},
		&fakeCaller{tag: 2, err: errors.New("r down")},
		&fakeCaller{tag: 3, err: errors.New("r down")})
	if _, err := allDown.CallSync(&rpc.Request{Method: "m", CallID: 8}); !errors.Is(err, primErr) {
		t.Fatalf("err = %v, want primary's", err)
	}
}

// TestFailoverRotationUnderConcurrency: concurrent failovers must each
// visit every remaining replica once — a shared-counter walk would let
// interleaved increments pin one call onto the same dead replica twice
// and fail a request a healthy replica could have served.
func TestFailoverRotationUnderConcurrency(t *testing.T) {
	primary := &fakeCaller{tag: 1, err: errors.New("primary down")}
	dead := &fakeCaller{tag: 2, err: errors.New("replica down")}
	healthy := &fakeCaller{tag: 3}
	h := hedged(t, time.Hour, primary, dead, healthy)
	var wg sync.WaitGroup
	errs := make([]error, 32)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := h.CallSync(&rpc.Request{Method: "m", CallID: uint64(100 + i)})
			if err != nil {
				errs[i] = err
				return
			}
			if resp.Body[0] != 3 {
				errs[i] = errors.New("answered by a dead caller")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v (rotation skipped the healthy replica)", i, err)
		}
	}
}

// TestHedgeRotationIndexOverflow is the uint64→int regression: a
// rotation counter past MaxInt64 must still index a replica (the old
// conversion-then-modulo went negative — out-of-range panic, or a
// "hedge" sent back to the failed primary).
func TestHedgeRotationIndexOverflow(t *testing.T) {
	primary := &fakeCaller{tag: 1, err: errors.New("primary down")}
	replicas := []rpc.Caller{primary,
		&fakeCaller{tag: 2}, &fakeCaller{tag: 3}, &fakeCaller{tag: 4}}
	h := hedged(t, time.Hour, replicas...)
	h.next.Store(^uint64(0) - 8) // a few increments from wraparound
	for i := 0; i < 20; i++ {
		resp, err := h.CallSync(&rpc.Request{Method: "m", CallID: uint64(10 + i)})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if resp.Body[0] == 1 {
			t.Fatalf("call %d answered by the failed primary: rotation indexed replica 0", i)
		}
	}
	if primary.calls.Load() != 20 {
		t.Errorf("primary calls = %d, want 20", primary.calls.Load())
	}
}

// TestRaceFailoverContinuesThroughReplicas is the delay-race regression:
// when the hedge timer fires and *both* the primary and the hedge
// replica fail, the race path must keep rotating through the untried
// replicas (as the immediate-failover path does) instead of surfacing
// the primary's error with a healthy replica left unasked.
func TestRaceFailoverContinuesThroughReplicas(t *testing.T) {
	// Primary errors slowly so the hedge timer fires first; the rotation
	// is pinned so the hedge lands on the dead replica and only the
	// failover continuation can reach the healthy one.
	primary := &fakeCaller{tag: 1, delay: 20 * time.Millisecond, err: errors.New("primary down")}
	dead := &fakeCaller{tag: 2, err: errors.New("replica down")}
	healthy := &fakeCaller{tag: 3}
	h := hedged(t, 2*time.Millisecond, primary, dead, healthy)
	h.next.Store(0) // first hedge candidate after the bump is index 1 (dead)
	resp, err := h.CallSync(&rpc.Request{Method: "m", CallID: 7})
	if err != nil || resp.Body[0] != 3 {
		t.Fatalf("resp = %+v, %v; want the healthy replica's answer", resp, err)
	}
	if dead.calls.Load() != 1 || healthy.calls.Load() != 1 {
		t.Errorf("calls dead=%d healthy=%d, want 1/1", dead.calls.Load(), healthy.calls.Load())
	}
	if h.Hedges() != 1 {
		t.Errorf("hedges = %d, want 1 (the delay-triggered hedge only)", h.Hedges())
	}
	if h.FailoverAttempts() == 0 {
		t.Error("failover continuation never ran")
	}
}

// TestRaceFailoverPrimaryErrorMidRace covers the sibling ordering: the
// primary's error arrives while the hedge is still racing, the hedge
// then fails too, and the walk must still reach the remaining replica.
func TestRaceFailoverPrimaryErrorMidRace(t *testing.T) {
	primary := &fakeCaller{tag: 1, delay: 5 * time.Millisecond, err: errors.New("primary down")}
	dead := &fakeCaller{tag: 2, delay: 30 * time.Millisecond, err: errors.New("replica down")}
	healthy := &fakeCaller{tag: 3}
	h := hedged(t, 2*time.Millisecond, primary, dead, healthy)
	h.next.Store(0) // hedge lands on the dead replica
	resp, err := h.CallSync(&rpc.Request{Method: "m", CallID: 7})
	if err != nil || resp.Body[0] != 3 {
		t.Fatalf("resp = %+v, %v; want the healthy replica's answer", resp, err)
	}
}

// TestRaceFailoverAllFailSurfacesPrimary: the race-path continuation
// keeps the primary-error-wins contract when every replica fails.
func TestRaceFailoverAllFailSurfacesPrimary(t *testing.T) {
	primErr := errors.New("primary down")
	primary := &fakeCaller{tag: 1, delay: 8 * time.Millisecond, err: primErr}
	h := hedged(t, time.Millisecond, primary,
		&fakeCaller{tag: 2, err: errors.New("r down")},
		&fakeCaller{tag: 3, err: errors.New("r down")})
	if _, err := h.CallSync(&rpc.Request{Method: "m", CallID: 7}); !errors.Is(err, primErr) {
		t.Fatalf("err = %v, want primary's", err)
	}
}

// TestHealthEjectsFailingPrimary: with a tracker attached, a primary
// that fails FailThreshold calls in a row leaves the rotation — later
// calls go straight to the healthy replica instead of re-trying the
// dead one every time.
func TestHealthEjectsFailingPrimary(t *testing.T) {
	primary := &fakeCaller{tag: 1, err: errors.New("shard down")}
	replica := &fakeCaller{tag: 2}
	h := hedged(t, time.Hour, primary, replica)
	h.Health = NewHealthTracker(2, HealthConfig{FailThreshold: 2, ProbeEvery: time.Hour})
	for i := 0; i < 10; i++ {
		resp, err := h.CallSync(&rpc.Request{Method: "m", CallID: uint64(i + 1)})
		if err != nil || resp.Body[0] != 2 {
			t.Fatalf("call %d: resp = %+v, %v", i, resp, err)
		}
	}
	if got := primary.calls.Load(); got != 2 {
		t.Errorf("dead primary called %d times, want 2 (then ejected)", got)
	}
	snap := h.HealthSnapshot()
	if snap.Ejected != 1 || snap.Replicas[0].State != ReplicaEjected {
		t.Errorf("snapshot = %+v, want primary ejected", snap)
	}
	if snap.Replicas[1].State != ReplicaHealthy {
		t.Errorf("replica 1 state = %s", snap.Replicas[1].State)
	}
}

// TestHealthSlowStrikeEjectsHungPrimary: a hung (unresponsive, not
// erroring) primary is ejected via hedge-win strikes, and once ejected
// the calls stop paying the hedge delay.
func TestHealthSlowStrikeEjectsHungPrimary(t *testing.T) {
	replica := &fakeCaller{tag: 2}
	h := hedged(t, 4*time.Millisecond, Unresponsive(), replica)
	h.Health = NewHealthTracker(2, HealthConfig{FailThreshold: 2, ProbeEvery: time.Hour})
	for i := 0; i < 2; i++ { // strike calls: each pays the hedge delay
		start := time.Now()
		resp, err := h.CallSync(&rpc.Request{Method: "m", CallID: uint64(i + 1)})
		if err != nil || resp.Body[0] != 2 {
			t.Fatalf("strike call %d: resp = %+v, %v", i, resp, err)
		}
		if time.Since(start) < 4*time.Millisecond {
			t.Fatalf("strike call %d returned before the hedge delay", i)
		}
	}
	if snap := h.HealthSnapshot(); snap.Ejected != 1 {
		t.Fatalf("hung primary not ejected after %d strikes: %+v", 2, snap)
	}
	start := time.Now()
	resp, err := h.CallSync(&rpc.Request{Method: "m", CallID: 99})
	if err != nil || resp.Body[0] != 2 {
		t.Fatalf("post-ejection resp = %+v, %v", resp, err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Millisecond {
		t.Errorf("post-ejection call took %v; ejection should skip the dead primary", elapsed)
	}
}

// TestHealthProbeRecovery: an ejected replica whose server comes back
// (the Slot swaps in a live caller) is re-admitted by a probation probe
// after the probe interval.
func TestHealthProbeRecovery(t *testing.T) {
	slot := NewSlot(Unresponsive())
	replica := &fakeCaller{tag: 2}
	h := hedged(t, 3*time.Millisecond, slot, replica)
	h.Health = NewHealthTracker(2, HealthConfig{FailThreshold: 1, ProbeEvery: 20 * time.Millisecond})
	if _, err := h.CallSync(&rpc.Request{Method: "m", CallID: 1}); err != nil {
		t.Fatal(err)
	}
	if snap := h.HealthSnapshot(); snap.Ejected != 1 {
		t.Fatalf("primary not ejected: %+v", snap)
	}

	// Server comes back; the next probe should discover it.
	old := slot.Swap(&fakeCaller{tag: 1})
	old.Close()
	time.Sleep(25 * time.Millisecond)
	resp, err := h.CallSync(&rpc.Request{Method: "m", CallID: 2})
	if err != nil || resp.Body[0] != 1 {
		t.Fatalf("probe call resp = %+v, %v; want the recovered primary", resp, err)
	}
	snap := h.HealthSnapshot()
	if snap.Ejected != 0 || snap.Replicas[0].Recoveries != 1 || snap.Replicas[0].Probes == 0 {
		t.Errorf("post-recovery snapshot = %+v", snap)
	}
}

// TestHealthFailedProbeReArms: a probe against a still-dead replica
// keeps it ejected and re-arms the probe timer — at most one probe per
// interval pays the discovery cost.
func TestHealthFailedProbeReArms(t *testing.T) {
	tr := NewHealthTracker(1, HealthConfig{FailThreshold: 1, ProbeEvery: 15 * time.Millisecond})
	tr.ReportFailure(0)
	if tr.Healthy(0) || tr.Allow(0) {
		t.Fatal("replica must be ejected with no probe due")
	}
	time.Sleep(18 * time.Millisecond)
	if !tr.Allow(0) {
		t.Fatal("probe due, Allow must grant it")
	}
	if tr.Allow(0) {
		t.Fatal("second caller must not get a probe while one is in flight")
	}
	tr.ReportFailure(0) // probe failed
	if tr.Allow(0) {
		t.Fatal("failed probe must re-arm the interval, not re-probe immediately")
	}
	time.Sleep(18 * time.Millisecond)
	if !tr.Allow(0) {
		t.Fatal("next interval's probe must be granted")
	}
	tr.ReportSuccess(0)
	if !tr.Healthy(0) {
		t.Fatal("successful probe must close the breaker")
	}
}

// BenchmarkHealthTracker measures the healthy-path overhead Hedged adds
// per call when a tracker is attached (one Allow + one ReportSuccess).
func BenchmarkHealthTracker(b *testing.B) {
	tr := NewHealthTracker(3, HealthConfig{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !tr.Allow(i % 3) {
			b.Fatal("healthy replica disallowed")
		}
		tr.ReportSuccess(i % 3)
	}
}
