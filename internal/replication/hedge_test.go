package replication

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rpc"
)

// fakeCaller completes calls after a fixed delay, tagging responses so
// tests can see which replica answered.
type fakeCaller struct {
	tag   byte
	delay time.Duration
	err   error
	calls atomic.Int64
}

func (f *fakeCaller) Go(req *rpc.Request) *rpc.Call {
	f.calls.Add(1)
	call := &rpc.Call{Req: req, Done: make(chan struct{})}
	go func() {
		if f.delay > 0 {
			time.Sleep(f.delay)
		}
		if f.err != nil {
			call.Err = f.err
		} else {
			call.Resp = &rpc.Response{CallID: req.CallID, Body: []byte{f.tag}}
		}
		close(call.Done)
	}()
	return call
}

func (f *fakeCaller) Close() error { return nil }

func hedged(t *testing.T, delay time.Duration, replicas ...rpc.Caller) *Hedged {
	t.Helper()
	h, err := NewHedged(replicas, delay)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHedgeFastPrimaryNoHedge(t *testing.T) {
	primary := &fakeCaller{tag: 1}
	replica := &fakeCaller{tag: 2}
	h := hedged(t, 50*time.Millisecond, primary, replica)
	resp, err := h.CallSync(&rpc.Request{Method: "m", CallID: 7})
	if err != nil || resp.Body[0] != 1 {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
	if h.Hedges() != 0 || replica.calls.Load() != 0 {
		t.Errorf("fast primary must not hedge (hedges=%d)", h.Hedges())
	}
}

func TestHedgeCutsSlowPrimary(t *testing.T) {
	primary := &fakeCaller{tag: 1, delay: 100 * time.Millisecond}
	replica := &fakeCaller{tag: 2}
	h := hedged(t, 5*time.Millisecond, primary, replica)
	start := time.Now()
	resp, err := h.CallSync(&rpc.Request{Method: "m", CallID: 7})
	if err != nil || resp.Body[0] != 2 {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
	if elapsed := time.Since(start); elapsed > 60*time.Millisecond {
		t.Errorf("hedged call took %v; the replica should have answered first", elapsed)
	}
	if h.Hedges() != 1 || h.Wins() != 1 {
		t.Errorf("hedges = %d wins = %d, want 1/1", h.Hedges(), h.Wins())
	}
}

func TestHedgeFailsOverImmediately(t *testing.T) {
	primary := &fakeCaller{tag: 1, err: errors.New("shard down")}
	replica := &fakeCaller{tag: 2}
	// Delay far beyond the test: only failover can reach the replica.
	h := hedged(t, time.Hour, primary, replica)
	resp, err := h.CallSync(&rpc.Request{Method: "m", CallID: 7})
	if err != nil || resp.Body[0] != 2 {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
	if h.Hedges() != 1 {
		t.Errorf("hedges = %d, want 1", h.Hedges())
	}
}

func TestHedgeSurfacesPrimaryErrorWhenAllFail(t *testing.T) {
	primErr := errors.New("primary down")
	primary := &fakeCaller{tag: 1, delay: 10 * time.Millisecond, err: primErr}
	replica := &fakeCaller{tag: 2, err: errors.New("replica down")}
	h := hedged(t, time.Millisecond, primary, replica)
	_, err := h.CallSync(&rpc.Request{Method: "m", CallID: 7})
	if !errors.Is(err, primErr) {
		t.Fatalf("err = %v, want primary's", err)
	}
}

func TestHedgeSingleReplicaPassthrough(t *testing.T) {
	primary := &fakeCaller{tag: 1, delay: time.Millisecond}
	h := hedged(t, time.Microsecond, primary)
	resp, err := h.CallSync(&rpc.Request{Method: "m", CallID: 7})
	if err != nil || resp.Body[0] != 1 {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
	if h.Hedges() != 0 {
		t.Errorf("single replica cannot hedge")
	}
}

func TestNewHedgedRejectsEmpty(t *testing.T) {
	if _, err := NewHedged(nil, time.Millisecond); err == nil {
		t.Fatal("empty replica set must be rejected")
	}
}

// TestFailoverSurfacesPrimaryError is the failover-path regression: when
// the primary fails outright and the failover replica also fails, the
// caller must see the primary's error (matching the documented
// primary-error-wins contract of the race path), not the replica's.
func TestFailoverSurfacesPrimaryError(t *testing.T) {
	primErr := errors.New("primary down")
	primary := &fakeCaller{tag: 1, err: primErr}
	replica := &fakeCaller{tag: 2, err: errors.New("replica down")}
	// Delay far beyond the test: only the immediate failover path runs.
	h := hedged(t, time.Hour, primary, replica)
	_, err := h.CallSync(&rpc.Request{Method: "m", CallID: 7})
	if !errors.Is(err, primErr) {
		t.Fatalf("err = %v, want primary's", err)
	}
	if h.Failovers() != 1 {
		t.Errorf("failovers = %d, want 1", h.Failovers())
	}
}

// TestFailoverRotatesThroughReplicas: with >2 replicas, a failover whose
// first target also fails must try the remaining replicas before giving
// up.
func TestFailoverRotatesThroughReplicas(t *testing.T) {
	// The rotation cursor walks r2, r3, then r1 from a fresh ring; make
	// only the last-visited replica healthy so success requires visiting
	// every remaining replica.
	primary := &fakeCaller{tag: 1, err: errors.New("primary down")}
	r1 := &fakeCaller{tag: 2}
	r2 := &fakeCaller{tag: 3, err: errors.New("replica 2 down")}
	r3 := &fakeCaller{tag: 4, err: errors.New("replica 3 down")}
	h := hedged(t, time.Hour, primary, r1, r2, r3)
	resp, err := h.CallSync(&rpc.Request{Method: "m", CallID: 7})
	if err != nil || resp.Body[0] != 2 {
		t.Fatalf("resp = %+v, %v; want replica 2's answer", resp, err)
	}
	if r1.calls.Load() != 1 || r2.calls.Load() != 1 || r3.calls.Load() != 1 {
		t.Errorf("rotation calls = %d/%d/%d, want 1/1/1",
			r1.calls.Load(), r2.calls.Load(), r3.calls.Load())
	}
	// All replicas failing still surfaces the primary's error.
	primErr := errors.New("primary down")
	allDown := hedged(t, time.Hour,
		&fakeCaller{tag: 1, err: primErr},
		&fakeCaller{tag: 2, err: errors.New("r down")},
		&fakeCaller{tag: 3, err: errors.New("r down")})
	if _, err := allDown.CallSync(&rpc.Request{Method: "m", CallID: 8}); !errors.Is(err, primErr) {
		t.Fatalf("err = %v, want primary's", err)
	}
}

// TestFailoverRotationUnderConcurrency: concurrent failovers must each
// visit every remaining replica once — a shared-counter walk would let
// interleaved increments pin one call onto the same dead replica twice
// and fail a request a healthy replica could have served.
func TestFailoverRotationUnderConcurrency(t *testing.T) {
	primary := &fakeCaller{tag: 1, err: errors.New("primary down")}
	dead := &fakeCaller{tag: 2, err: errors.New("replica down")}
	healthy := &fakeCaller{tag: 3}
	h := hedged(t, time.Hour, primary, dead, healthy)
	var wg sync.WaitGroup
	errs := make([]error, 32)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := h.CallSync(&rpc.Request{Method: "m", CallID: uint64(100 + i)})
			if err != nil {
				errs[i] = err
				return
			}
			if resp.Body[0] != 3 {
				errs[i] = errors.New("answered by a dead caller")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v (rotation skipped the healthy replica)", i, err)
		}
	}
}

// TestHedgeRotationIndexOverflow is the uint64→int regression: a
// rotation counter past MaxInt64 must still index a replica (the old
// conversion-then-modulo went negative — out-of-range panic, or a
// "hedge" sent back to the failed primary).
func TestHedgeRotationIndexOverflow(t *testing.T) {
	primary := &fakeCaller{tag: 1, err: errors.New("primary down")}
	replicas := []rpc.Caller{primary,
		&fakeCaller{tag: 2}, &fakeCaller{tag: 3}, &fakeCaller{tag: 4}}
	h := hedged(t, time.Hour, replicas...)
	h.next.Store(^uint64(0) - 8) // a few increments from wraparound
	for i := 0; i < 20; i++ {
		resp, err := h.CallSync(&rpc.Request{Method: "m", CallID: uint64(10 + i)})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if resp.Body[0] == 1 {
			t.Fatalf("call %d answered by the failed primary: rotation indexed replica 0", i)
		}
	}
	if primary.calls.Load() != 20 {
		t.Errorf("primary calls = %d, want 20", primary.calls.Load())
	}
}
