package replication

import (
	"sync"
	"time"
)

// HealthTracker is a per-replica circuit breaker for a replica set: a
// replica that fails several calls in a row is ejected from the serving
// rotation (breaker open) instead of being re-tried on every request,
// then re-admitted through probation probes — an occasional real request
// is allowed through (half-open), and one success closes the breaker.
// At scale-out replica counts the probability that *some* replica is
// dead at any moment approaches one, so the rotation must route around
// dead replicas by default and pay the discovery cost only once per
// probe interval.
//
// Failures are whatever the caller reports: prompt transport errors, or
// a "slow strike" when a delay-triggered hedge answered while the
// replica was still silent (a hung server produces no error to count —
// losing the race it was given a head start in is the failure signal).
type HealthTracker struct {
	cfg HealthConfig
	mu  sync.Mutex
	rs  []replicaHealth
}

// HealthConfig tunes the breaker.
type HealthConfig struct {
	// FailThreshold is how many consecutive failures eject a replica
	// (default 3).
	FailThreshold int
	// ProbeEvery is how often an ejected replica is offered one live
	// request as a probation probe (default 250ms).
	ProbeEvery time.Duration
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 250 * time.Millisecond
	}
	return c
}

// Breaker states. Half-open is implicit: an open replica whose probe is
// in flight stays ReplicaEjected until the probe reports.
const (
	ReplicaHealthy = "healthy"
	ReplicaEjected = "ejected"
)

// replicaHealth is one replica's breaker state.
type replicaHealth struct {
	consecFails int
	open        bool
	probing     bool // a probation probe is in flight (half-open)
	nextProbe   time.Time
	openedAt    time.Time

	ejections  int64
	probes     int64
	recoveries int64
	successes  int64
	failures   int64
}

// ReplicaHealthStat is one replica's exported health state.
type ReplicaHealthStat struct {
	// State is ReplicaHealthy or ReplicaEjected.
	State string
	// ConsecutiveFails is the current failure streak.
	ConsecutiveFails int
	// Ejections, Probes, Recoveries count breaker transitions over the
	// tracker's lifetime; Successes/Failures count reported outcomes.
	Ejections, Probes, Recoveries int64
	Successes, Failures           int64
	// EjectedFor is how long the replica has been out of rotation (0 when
	// healthy).
	EjectedFor time.Duration
}

// HealthSnapshot is a point-in-time view of a replica set's health.
type HealthSnapshot struct {
	Replicas []ReplicaHealthStat
	// Ejected counts replicas currently out of rotation.
	Ejected int
}

// NewHealthTracker builds a tracker for n replicas, all initially
// healthy.
func NewHealthTracker(n int, cfg HealthConfig) *HealthTracker {
	return &HealthTracker{cfg: cfg.withDefaults(), rs: make([]replicaHealth, n)}
}

// Allow reports whether replica i may serve a request right now. A
// healthy replica always may; an ejected one may only when its probe
// interval has elapsed, in which case exactly one caller is granted the
// probation probe (half-open) and must report the outcome.
func (t *HealthTracker) Allow(i int) bool {
	if t == nil {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := &t.rs[i]
	if !r.open {
		return true
	}
	if r.probing || time.Now().Before(r.nextProbe) {
		return false
	}
	r.probing = true
	r.probes++
	return true
}

// Healthy reports whether replica i is in rotation, without consuming a
// probe token.
func (t *HealthTracker) Healthy(i int) bool {
	if t == nil {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return !t.rs[i].open
}

// ReportSuccess books a successful call on replica i: the failure streak
// resets, and an ejected replica (its probe succeeded) recovers into the
// rotation.
func (t *HealthTracker) ReportSuccess(i int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := &t.rs[i]
	r.successes++
	r.consecFails = 0
	if r.open {
		r.open = false
		r.probing = false
		r.recoveries++
	}
}

// ReportFailure books a failed (or hedged-past) call on replica i: the
// streak grows, crossing the threshold ejects the replica, and a failed
// probe re-arms the next probe interval.
func (t *HealthTracker) ReportFailure(i int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := &t.rs[i]
	r.failures++
	r.consecFails++
	now := time.Now()
	if r.open {
		// Failed probe: stay open, schedule the next probe.
		r.probing = false
		r.nextProbe = now.Add(t.cfg.ProbeEvery)
		return
	}
	if r.consecFails >= t.cfg.FailThreshold {
		r.open = true
		r.probing = false
		r.openedAt = now
		r.nextProbe = now.Add(t.cfg.ProbeEvery)
		r.ejections++
	}
}

// Snapshot returns the tracker's current state.
func (t *HealthTracker) Snapshot() HealthSnapshot {
	if t == nil {
		return HealthSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := HealthSnapshot{Replicas: make([]ReplicaHealthStat, len(t.rs))}
	now := time.Now()
	for i := range t.rs {
		r := &t.rs[i]
		st := ReplicaHealthStat{
			State:            ReplicaHealthy,
			ConsecutiveFails: r.consecFails,
			Ejections:        r.ejections,
			Probes:           r.probes,
			Recoveries:       r.recoveries,
			Successes:        r.successes,
			Failures:         r.failures,
		}
		if r.open {
			st.State = ReplicaEjected
			st.EjectedFor = now.Sub(r.openedAt)
			out.Ejected++
		}
		out.Replicas[i] = st
	}
	return out
}
