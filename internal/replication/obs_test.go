package replication

import (
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rpc"
)

// HealthSnapshot must always be internally consistent under concurrent
// outcome reporting: the Ejected count agrees with the per-replica
// states, per-replica counters never run backwards, and EjectedFor is
// only set on ejected replicas. Run with -race this also proves the
// snapshot path takes the tracker lock (no half-written state).
func TestHealthSnapshotConcurrent(t *testing.T) {
	const replicas = 4
	ht := NewHealthTracker(replicas, HealthConfig{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < replicas; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				// Alternate streaks so replicas keep crossing the breaker
				// threshold in both directions while snapshots run.
				if j%7 < 4 {
					ht.ReportFailure(idx)
				} else {
					ht.ReportSuccess(idx)
				}
				ht.Allow(idx)
			}
		}(i)
	}

	deadline := time.Now().Add(200 * time.Millisecond)
	var prev HealthSnapshot
	for time.Now().Before(deadline) {
		s := ht.Snapshot()
		if len(s.Replicas) != replicas {
			t.Fatalf("snapshot has %d replicas, want %d", len(s.Replicas), replicas)
		}
		ejected := 0
		for i, r := range s.Replicas {
			switch r.State {
			case ReplicaHealthy:
				if r.EjectedFor != 0 {
					t.Fatalf("replica %d healthy but EjectedFor=%v", i, r.EjectedFor)
				}
			case ReplicaEjected:
				ejected++
			default:
				t.Fatalf("replica %d has torn state %q", i, r.State)
			}
			if r.ConsecutiveFails < 0 || r.Successes < 0 || r.Failures < 0 ||
				r.Ejections < 0 || r.Probes < 0 || r.Recoveries < 0 {
				t.Fatalf("replica %d has negative counters: %+v", i, r)
			}
			if len(prev.Replicas) == replicas {
				p := prev.Replicas[i]
				if r.Successes < p.Successes || r.Failures < p.Failures || r.Ejections < p.Ejections {
					t.Fatalf("replica %d counters ran backwards: %+v then %+v", i, p, r)
				}
			}
		}
		if s.Ejected != ejected {
			t.Fatalf("Ejected=%d but %d replicas report ejected state", s.Ejected, ejected)
		}
		prev = s
	}
	close(stop)
	wg.Wait()
}

func TestHedgedRegisterMetrics(t *testing.T) {
	ht := NewHealthTracker(2, HealthConfig{})
	h := &Hedged{
		Replicas: []rpc.Caller{Unresponsive(), Unresponsive()},
		Delay:    time.Millisecond,
		Health:   ht,
	}
	h.hedges.Add(3)
	h.wins.Add(2)
	h.failovers.Add(1)
	h.failoverAttempts.Add(4)
	ht.ReportSuccess(0)
	ht.ReportFailure(1)

	reg := obs.NewRegistry()
	h.RegisterMetrics(reg, "replication.sparse1.")
	s := reg.Snapshot()
	for name, want := range map[string]int64{
		"replication.sparse1.hedges":            3,
		"replication.sparse1.wins":              2,
		"replication.sparse1.failovers":         1,
		"replication.sparse1.failover_attempts": 4,
		"replication.sparse1.call_successes":    1,
		"replication.sparse1.call_failures":     1,
		"replication.sparse1.ejected":           0,
	} {
		if got := s.Gauge(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

// fastCaller completes every call immediately.
type fastCaller struct{}

func (fastCaller) Go(req *rpc.Request) *rpc.Call {
	c := &rpc.Call{Req: req, Resp: &rpc.Response{}, Done: make(chan struct{})}
	close(c.Done)
	return c
}

func (fastCaller) Close() error { return nil }

func TestObserveCaller(t *testing.T) {
	reg := obs.NewRegistry()
	hist := reg.Histogram("replica0.call_ns")
	lost := reg.Counter("replica0.lost")

	c := ObserveCaller(fastCaller{}, hist, lost, 50*time.Millisecond)
	call := c.Go(&rpc.Request{Method: "x"})
	<-call.Done
	waitFor(t, func() bool { return hist.Snapshot().Count == 1 })

	// An unresponsive callee counts as lost after the bound, and the
	// observer goroutine exits rather than pinning the never-closed Done.
	u := ObserveCaller(Unresponsive(), hist, lost, time.Millisecond)
	u.Go(&rpc.Request{Method: "x"})
	waitFor(t, func() bool { return lost.Load() == 1 })

	// Discarding registries wrap nothing.
	d := obs.Discard()
	if got := ObserveCaller(fastCaller{}, d.Histogram("h"), d.Counter("c"), time.Second); got != (fastCaller{}) {
		t.Error("nil handles should return the caller unwrapped")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
