package replication

import (
	"errors"
	"testing"
	"time"

	"repro/internal/rpc"
)

func TestSetEnabledRoutesAroundDisabledPrimary(t *testing.T) {
	primary := &fakeCaller{tag: 1}
	replica := &fakeCaller{tag: 2}
	h := hedged(t, 50*time.Millisecond, primary, replica)
	h.SetEnabled(0, false)
	resp, err := h.CallSync(&rpc.Request{Method: "m", CallID: 7})
	if err != nil || resp.Body[0] != 2 {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
	if primary.calls.Load() != 0 {
		t.Errorf("disabled primary took %d calls, want 0", primary.calls.Load())
	}
	if h.EnabledReplicas() != 1 {
		t.Errorf("EnabledReplicas = %d, want 1", h.EnabledReplicas())
	}
}

func TestSetEnabledExcludesHedgeAndFailover(t *testing.T) {
	// Three replicas; 1 and 2 disabled. A slow primary must not hedge to
	// a parked replica — the call waits on the primary instead.
	primary := &fakeCaller{tag: 1, delay: 30 * time.Millisecond}
	r1 := &fakeCaller{tag: 2}
	r2 := &fakeCaller{tag: 3}
	h := hedged(t, 2*time.Millisecond, primary, r1, r2)
	h.SetEnabled(1, false)
	h.SetEnabled(2, false)
	resp, err := h.CallSync(&rpc.Request{Method: "m", CallID: 7})
	if err != nil || resp.Body[0] != 1 {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
	if r1.calls.Load() != 0 || r2.calls.Load() != 0 {
		t.Errorf("parked replicas took calls: %d/%d", r1.calls.Load(), r2.calls.Load())
	}

	// A failing primary must fail over only to the enabled replica.
	fail := &fakeCaller{tag: 1, err: errors.New("down")}
	ok := &fakeCaller{tag: 2}
	parked := &fakeCaller{tag: 3}
	h2 := hedged(t, time.Hour, fail, ok, parked)
	h2.SetEnabled(2, false)
	resp, err = h2.CallSync(&rpc.Request{Method: "m", CallID: 8})
	if err != nil || resp.Body[0] != 2 {
		t.Fatalf("failover resp = %+v, %v", resp, err)
	}
	if parked.calls.Load() != 0 {
		t.Errorf("failover reached a parked replica (%d calls)", parked.calls.Load())
	}
}

func TestSetEnabledReEnableRestoresRotation(t *testing.T) {
	primary := &fakeCaller{tag: 1, delay: 30 * time.Millisecond}
	replica := &fakeCaller{tag: 2}
	h := hedged(t, 2*time.Millisecond, primary, replica)
	h.SetEnabled(1, false)
	h.SetEnabled(1, true)
	resp, err := h.CallSync(&rpc.Request{Method: "m", CallID: 9})
	if err != nil || resp.Body[0] != 2 {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
	if h.Hedges() != 1 {
		t.Errorf("hedges = %d, want 1 after re-enable", h.Hedges())
	}
}

func TestSetEnabledNeverGrantsProbesToParked(t *testing.T) {
	// With health tracking on, a parked replica must not be offered
	// probation probes: its slot is Unresponsive and each probe would
	// burn a hedge delay.
	primary := &fakeCaller{tag: 1}
	parked := &fakeCaller{tag: 2}
	h := hedged(t, 2*time.Millisecond, primary, parked)
	h.Health = NewHealthTracker(2, HealthConfig{FailThreshold: 1, ProbeEvery: time.Nanosecond})
	h.SetEnabled(1, false)
	for i := 0; i < 20; i++ {
		if _, err := h.CallSync(&rpc.Request{Method: "m", CallID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if parked.calls.Load() != 0 {
		t.Errorf("parked replica received %d probe calls, want 0", parked.calls.Load())
	}
}

func TestSetEnabledOutOfRangeIgnored(t *testing.T) {
	primary := &fakeCaller{tag: 1}
	h := hedged(t, time.Millisecond, primary)
	h.SetEnabled(-1, false)
	h.SetEnabled(5, false)
	if !h.Enabled(0) || h.EnabledReplicas() != 1 {
		t.Errorf("out-of-range SetEnabled changed state: enabled=%d", h.EnabledReplicas())
	}
	if h.Enabled(-1) || h.Enabled(1) {
		t.Error("Enabled out of range must be false")
	}
}
