package replication

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/netsim"
	"repro/internal/rpc"
)

// Hedged issues each RPC to a primary replica and, when the response has
// not arrived within Delay, re-issues it to another replica — the classic
// tail-latency hedge over the replica sets this package's Advise sizes.
// The first response wins; a failed primary fails over to a replica
// immediately. Sparse shards are stateless (Section III-A1), so replicas
// answer identically and duplicated work is the only cost.
//
// With a HealthTracker attached, replica selection is health-aware:
// ejected replicas are skipped by the primary pick, the hedge rotation,
// and the failover walk, and are only offered the occasional probation
// probe — so a dead replica costs one hedge delay per probe interval
// instead of one per request. A delay-triggered hedge that wins while
// the primary is still silent counts as a failure strike against the
// primary: a hung server never returns an error to count, so losing the
// race it was given a head start in is the signal.
//
// Hedged implements rpc.Caller, so the engine's RPC operators hedge
// without knowing: cluster wiring hands the engine a Hedged instead of a
// bare client.
type Hedged struct {
	// Replicas are callers to identical servers; Replicas[0] is the
	// preferred primary.
	Replicas []rpc.Caller
	// Delay is how long to wait on the primary before hedging. <= 0
	// disables hedging (failover still applies).
	Delay time.Duration
	// Health, when non-nil, ejects repeatedly failing replicas from the
	// rotation (see HealthTracker). Set before the first call, and only
	// with Delay > 0: slow-strike detection and the breaker's bounded
	// waits both hang off the hedge timer.
	Health *HealthTracker

	next             atomic.Uint64 // rotates the hedge/failover target
	hedges           atomic.Int64
	wins             atomic.Int64
	failovers        atomic.Int64
	failoverAttempts atomic.Int64

	// disabled is a bitmask of administratively parked replicas (see
	// SetEnabled). Unlike health ejection — a guess that a replica is
	// sick, softened by probation probes and unfiltered-rotation
	// fallbacks — a disabled replica is definitively out of service (no
	// server, no table store), so every selection path skips it
	// unconditionally and it is never offered a probe.
	disabled atomic.Uint64
}

// maxReplicas bounds the replica set so the admin mask fits one word.
const maxReplicas = 64

// SetEnabled administratively adds or removes replica i from the
// rotation. The elastic capacity scheduler parks replicas it has
// reclaimed (and replicas that boot without a server) this way;
// re-enabling happens only after a fresh store is rebuilt and a server
// is serving again. Out-of-range indices are ignored.
func (h *Hedged) SetEnabled(i int, on bool) {
	if i < 0 || i >= len(h.Replicas) || i >= maxReplicas {
		return
	}
	bit := uint64(1) << uint(i)
	for {
		cur := h.disabled.Load()
		next := cur | bit
		if on {
			next = cur &^ bit
		}
		if cur == next || h.disabled.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Enabled reports whether replica i is administratively in rotation.
func (h *Hedged) Enabled(i int) bool {
	if i < 0 || i >= len(h.Replicas) {
		return false
	}
	return i >= maxReplicas || h.disabled.Load()&(1<<uint(i)) == 0
}

// EnabledReplicas counts replicas administratively in rotation.
func (h *Hedged) EnabledReplicas() int {
	n := 0
	for i := range h.Replicas {
		if h.Enabled(i) {
			n++
		}
	}
	return n
}

// NewHedged builds a hedged caller; it requires at least one replica.
func NewHedged(replicas []rpc.Caller, delay time.Duration) (*Hedged, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("replication: hedged caller needs at least one replica")
	}
	return &Hedged{Replicas: replicas, Delay: delay}, nil
}

// Hedges reports how many delay-triggered hedge requests were issued.
// Failover re-issues are counted separately (FailoverAttempts): mixing
// them in would inflate the hedge rate the experiments report.
func (h *Hedged) Hedges() int64 { return h.hedges.Load() }

// Wins reports how many delay-triggered hedges answered before the
// primary — the measure of tail latency actually cut. Failover
// successes are counted separately (Failovers), not here.
func (h *Hedged) Wins() int64 { return h.wins.Load() }

// Failovers reports how many calls entered the failover path because the
// primary (and any racing hedge) failed outright.
func (h *Hedged) Failovers() int64 { return h.failovers.Load() }

// FailoverAttempts reports how many replica re-issues the failover walks
// made — ≥ Failovers, since one failover rotates through every untried
// replica until one answers.
func (h *Hedged) FailoverAttempts() int64 { return h.failoverAttempts.Load() }

// HealthSnapshot reports the replica set's breaker state (zero value
// when no tracker is attached).
func (h *Hedged) HealthSnapshot() HealthSnapshot {
	if h.Health == nil {
		return HealthSnapshot{}
	}
	return h.Health.Snapshot()
}

// Go implements rpc.Caller.
func (h *Hedged) Go(req *rpc.Request) *rpc.Call {
	if len(h.Replicas) == 1 {
		return h.Replicas[0].Go(req)
	}
	pi := h.pickPrimary()
	primary := h.Replicas[pi].Go(req)
	out := &rpc.Call{Req: req, Done: make(chan struct{})}
	go h.race(req, pi, primary, out)
	return out
}

// pickPrimary returns the first enabled in-rotation replica, preferring
// the configured primary — ejected replicas are not retried on every
// call, they wait for their probation probe. Disabled replicas are
// checked before the health tracker so a parked replica never consumes
// a probe grant.
func (h *Hedged) pickPrimary() int {
	first := -1
	for i := range h.Replicas {
		if !h.Enabled(i) {
			continue
		}
		if first < 0 {
			first = i
		}
		if h.Health == nil || h.Health.Allow(i) {
			return i
		}
	}
	if first >= 0 {
		// Everything enabled is ejected and no probe due: someone has to
		// take the call.
		return first
	}
	// Everything administratively disabled (a scheduler mid-transition):
	// fall back to the configured primary rather than fail outright.
	return 0
}

// race resolves out with the first usable response from the primary or a
// hedge replica. Using one call id on two connections is safe: pending
// call tables are per connection.
func (h *Hedged) race(req *rpc.Request, pi int, primary *rpc.Call, out *rpc.Call) {
	var hedgeAfter <-chan struct{} // nil never fires: failover-only mode
	if h.Delay > 0 {
		hedgeAfter = netsim.After(h.Delay)
	}
	select {
	case <-primary.Done:
		h.report(pi, primary.Err == nil)
		if primary.Err == nil {
			finish(out, primary)
			return
		}
		// Primary failed outright: fail over without waiting for Delay,
		// rotating through each remaining replica until one answers. If
		// every replica fails, the primary's error surfaces (the
		// primary's diagnosis names the authoritative shard; replica
		// errors are secondary).
		h.failovers.Add(1)
		if h.failover(req, pi, -1, out) {
			return
		}
		finish(out, primary)
		return
	case <-hedgeAfter:
	}

	hi, hedge := h.issueHedge(req, pi)
	if hedge == nil {
		// No hedge candidate: the primary is the only enabled replica
		// (the elastic scheduler parked the rest). The health-filtered
		// walk alone cannot land here — it degrades to an unfiltered
		// rotation — so this is the single-active-replica path: wait on
		// the primary like an unreplicated caller would.
		<-primary.Done
		h.report(pi, primary.Err == nil)
		finish(out, primary)
		return
	}

	// Both in flight: first success wins. With health tracking the race
	// itself is bounded: two unresponsive racers (a multi-replica
	// failure) must strike and fail over, not park the request forever.
	var raceBound <-chan struct{}
	if h.Health != nil {
		raceBound = netsim.After(2 * h.Delay)
	}
	select {
	case <-raceBound:
		h.report(pi, false)
		h.report(hi, false)
		h.failovers.Add(1)
		if h.failover(req, pi, hi, out) {
			return
		}
		// Nothing else answered either; fall back to whichever racer
		// speaks first — a struck racer may only have been slow.
		h.awaitEither(pi, primary, hi, hedge, out)
	case <-primary.Done:
		h.report(pi, primary.Err == nil)
		if primary.Err == nil {
			// The hedge is abandoned, but its outcome must still be
			// booked — a probation probe left unresolved would block
			// every future probe for that replica.
			h.resolveAbandoned(hi, hedge)
			finish(out, primary)
			return
		}
		// Primary errored mid-race: this is a failover (the primary
		// answered first, so no tail latency was cut — a rescue here
		// must not inflate Wins), with the already-issued hedge as the
		// first candidate, then the rest of the rotation. This path must
		// not give up after the hedge — the immediate-failover path
		// above rotates through every replica, and the two must agree.
		h.failovers.Add(1)
		if h.awaitCall(hi, hedge) && hedge.Err == nil {
			finish(out, hedge)
			return
		}
		if h.failover(req, pi, hi, out) {
			return
		}
		finish(out, primary)
	case <-hedge.Done:
		h.report(hi, hedge.Err == nil)
		if hedge.Err == nil {
			h.wins.Add(1)
			h.strikeIfSilent(pi, primary)
			finish(out, hedge)
			return
		}
		// Hedge failed while the primary is still out: continue the
		// failover through the untried replicas instead of parking on a
		// possibly hung primary. The abandoned primary's outcome must
		// still resolve — if it holds a probation probe, leaving it
		// unreported would block every future probe for that replica.
		h.failovers.Add(1)
		if h.failover(req, pi, hi, out) {
			h.resolveAbandoned(pi, primary)
			return
		}
		h.await(pi, primary, out, hedge.Err)
	}
}

// failover walks the rotation once, re-issuing req to every in-rotation
// replica except pi (the failed primary) and skip (an already-tried
// hedge), finishing out with the first success. The shared cursor is
// read once and the walk continues from it locally, so concurrent
// failovers cannot interleave increments and revisit the same dead
// replica.
func (h *Hedged) failover(req *rpc.Request, pi, skip int, out *rpc.Call) bool {
	n := len(h.Replicas)
	// Reduce the counter modulo n in uint64 space before the int
	// conversion: converting a counter past MaxInt64 first would go
	// negative and index out of range.
	base := h.next.Add(1)
	tried := make([]bool, n)
	// Pass 0 honors health ejection; pass 1 (health only) retries the
	// ejected leftovers — health steers routing, it must never be the
	// reason a request fails when an out-of-rotation replica might still
	// answer.
	for pass := 0; pass < 2; pass++ {
		for a := 0; a < n; a++ {
			idx := int((base + uint64(a)) % uint64(n))
			if idx == pi || idx == skip || tried[idx] || !h.Enabled(idx) {
				continue
			}
			if pass == 0 && h.Health != nil && !h.Health.Allow(idx) {
				continue
			}
			tried[idx] = true
			h.failoverAttempts.Add(1)
			call := h.Replicas[idx].Go(req)
			if !h.awaitCall(idx, call) {
				continue
			}
			if call.Err == nil {
				finish(out, call)
				return true
			}
		}
		if h.Health == nil {
			break
		}
	}
	return false
}

// awaitCall waits for one replica call and reports its outcome. With a
// health tracker and hedging enabled the wait is bounded by the hedge
// delay — a hung replica must cost a strike, not a hung request; without
// one, transport failures are prompt and the wait is plain.
func (h *Hedged) awaitCall(idx int, call *rpc.Call) bool {
	if h.Health != nil && h.Delay > 0 {
		select {
		case <-call.Done:
		case <-netsim.After(h.Delay):
			h.report(idx, false)
			return false
		}
	} else {
		<-call.Done
	}
	h.report(idx, call.Err == nil)
	return true
}

// awaitEither resolves out from whichever racer answers first after the
// bounded race and the failover walk both came up empty: the first
// success wins, two failures surface the primary's error, and (with
// health tracking) total silence surfaces a bounded timeout instead of
// hanging the request. Both racers were already struck when the race
// bound fired, so only successes are re-reported here — re-booking the
// same failed call would double-count one bad request as two
// consecutive-failure strikes.
func (h *Hedged) awaitEither(pi int, primary *rpc.Call, hi int, hedge *rpc.Call, out *rpc.Call) {
	var bound <-chan struct{}
	if h.Health != nil && h.Delay > 0 {
		bound = netsim.After(4 * h.Delay)
	}
	pDone, hDone := false, false
	for !pDone || !hDone {
		var pCh, hCh <-chan struct{}
		if !pDone {
			pCh = primary.Done
		}
		if !hDone {
			hCh = hedge.Done
		}
		select {
		case <-pCh:
			pDone = true
			if primary.Err == nil {
				h.report(pi, true)
				finish(out, primary)
				return
			}
		case <-hCh:
			hDone = true
			if hedge.Err == nil {
				h.report(hi, true)
				finish(out, hedge)
				return
			}
		case <-bound:
			out.Err = fmt.Errorf("replication: no replica answered (waited a further %v after the bounded race)", 4*h.Delay)
			close(out.Done)
			return
		}
	}
	// Both failed: the primary's error is authoritative.
	finish(out, primary)
}

// await resolves out from the primary alone after every alternative has
// been exhausted: the primary's answer (or error) is authoritative when
// it arrives. With health tracking the wait is bounded — a hung primary
// surfaces fallback instead of hanging the request.
func (h *Hedged) await(pi int, primary *rpc.Call, out *rpc.Call, fallback error) {
	var bound <-chan struct{}
	if h.Health != nil && h.Delay > 0 {
		bound = netsim.After(h.Delay)
	}
	select {
	case <-primary.Done:
		h.report(pi, primary.Err == nil)
		finish(out, primary)
	case <-bound:
		h.report(pi, false)
		out.Err = fallback
		close(out.Done)
	}
}

// CallSync issues req and blocks for the (possibly hedged) response.
func (h *Hedged) CallSync(req *rpc.Request) (*rpc.Response, error) {
	call := h.Go(req)
	<-call.Done
	return call.Resp, call.Err
}

// issueHedge sends req to the next in-rotation replica after pi. When
// every alternative is ejected the walk degrades to the unfiltered
// rotation — losing hedge protection because the breaker is pessimistic
// would be worse than hedging against a suspect replica.
func (h *Hedged) issueHedge(req *rpc.Request, pi int) (int, *rpc.Call) {
	n := len(h.Replicas)
	base := h.next.Add(1)
	for pass := 0; pass < 2; pass++ {
		for a := 0; a < n; a++ {
			idx := int((base + uint64(a)) % uint64(n))
			if idx == pi || !h.Enabled(idx) {
				continue
			}
			if pass == 0 && h.Health != nil && !h.Health.Allow(idx) {
				continue
			}
			h.hedges.Add(1)
			return idx, h.Replicas[idx].Go(req)
		}
		if h.Health == nil {
			break
		}
	}
	return -1, nil
}

// report books a call outcome with the health tracker, when present.
func (h *Hedged) report(idx int, ok bool) {
	if h.Health == nil {
		return
	}
	if ok {
		h.Health.ReportSuccess(idx)
	} else {
		h.Health.ReportFailure(idx)
	}
}

// strikeIfSilent books a failure strike against the primary when a
// delay-triggered hedge won and the primary still has not answered — a
// hung server produces no error to count, and a primary that cannot
// beat its own head start is not serving. The check is non-blocking: if
// the primary answered in the meantime its real outcome is booked.
func (h *Hedged) strikeIfSilent(pi int, primary *rpc.Call) {
	if h.Health == nil {
		return
	}
	select {
	case <-primary.Done:
		h.report(pi, primary.Err == nil)
	default:
		// The primary had a full hedge delay of head start plus the
		// hedge's service time and is still silent: strike now.
		h.report(pi, false)
	}
}

// resolveAbandoned books an outcome for a just-issued hedge the race no
// longer waits on (the primary answered first). A completed call
// reports its real result; a still-silent one gets one hedge delay —
// off the request path — to answer before it is booked as a failure
// strike. The grace window matters for probation probes issued as
// hedges: the primary often answers moments after the hedge was issued,
// and striking the probe instantly would mean a recovered replica could
// never prove itself. The extra goroutine is bounded by the delay
// timer, so an unresponsive replica cannot pin it.
func (h *Hedged) resolveAbandoned(idx int, call *rpc.Call) {
	if h.Health == nil {
		return
	}
	select {
	case <-call.Done:
		h.report(idx, call.Err == nil)
		return
	default:
	}
	if h.Delay <= 0 {
		h.report(idx, false)
		return
	}
	bound := netsim.After(h.Delay)
	go func() {
		select {
		case <-call.Done:
			h.report(idx, call.Err == nil)
		case <-bound:
			h.report(idx, false)
		}
	}()
}

func finish(out *rpc.Call, from *rpc.Call) {
	out.Resp, out.Err = from.Resp, from.Err
	close(out.Done)
}

// Close implements rpc.Caller, closing every replica connection.
func (h *Hedged) Close() error {
	var firstErr error
	for _, r := range h.Replicas {
		if err := r.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

var _ rpc.Caller = (*Hedged)(nil)
