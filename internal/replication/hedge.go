package replication

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/netsim"
	"repro/internal/rpc"
)

// Hedged issues each RPC to a primary replica and, when the response has
// not arrived within Delay, re-issues it to another replica — the classic
// tail-latency hedge over the replica sets this package's Advise sizes.
// The first response wins; a failed primary fails over to a replica
// immediately. Sparse shards are stateless (Section III-A1), so replicas
// answer identically and duplicated work is the only cost.
//
// Hedged implements rpc.Caller, so the engine's RPC operators hedge
// without knowing: cluster wiring hands the engine a Hedged instead of a
// bare client.
type Hedged struct {
	// Replicas are callers to identical servers; Replicas[0] is primary.
	Replicas []rpc.Caller
	// Delay is how long to wait on the primary before hedging. <= 0
	// disables hedging (failover still applies).
	Delay time.Duration

	next      atomic.Uint64 // rotates the hedge target
	hedges    atomic.Int64
	wins      atomic.Int64
	failovers atomic.Int64
}

// NewHedged builds a hedged caller; it requires at least one replica.
func NewHedged(replicas []rpc.Caller, delay time.Duration) (*Hedged, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("replication: hedged caller needs at least one replica")
	}
	return &Hedged{Replicas: replicas, Delay: delay}, nil
}

// Hedges reports how many hedge requests were issued (failovers
// included).
func (h *Hedged) Hedges() int64 { return h.hedges.Load() }

// Wins reports how many delay-triggered hedges answered before the
// primary — the measure of tail latency actually cut. Failover
// successes are counted separately (Failovers), not here.
func (h *Hedged) Wins() int64 { return h.wins.Load() }

// Failovers reports how many calls were re-issued because the primary
// failed outright (as opposed to being slow).
func (h *Hedged) Failovers() int64 { return h.failovers.Load() }

// Go implements rpc.Caller.
func (h *Hedged) Go(req *rpc.Request) *rpc.Call {
	primary := h.Replicas[0].Go(req)
	if len(h.Replicas) == 1 {
		return primary
	}
	out := &rpc.Call{Req: req, Done: make(chan struct{})}
	go h.race(req, primary, out)
	return out
}

// race resolves out with the first usable response from the primary or a
// hedge replica. Using one call id on two connections is safe: pending
// call tables are per connection.
func (h *Hedged) race(req *rpc.Request, primary *rpc.Call, out *rpc.Call) {
	var hedgeAfter <-chan struct{} // nil never fires: failover-only mode
	if h.Delay > 0 {
		hedgeAfter = netsim.After(h.Delay)
	}
	var hedge *rpc.Call
	select {
	case <-primary.Done:
		if primary.Err == nil {
			finish(out, primary)
			return
		}
		// Primary failed outright: fail over without waiting for Delay.
		// Not a hedge win — no race was run, no tail latency cut. With
		// more than two replicas the failover rotates through each
		// remaining replica exactly once: the shared cursor is read once
		// and the walk continues from it locally, so concurrent failovers
		// cannot interleave increments and revisit the same dead replica.
		// If every replica fails, the primary's error surfaces (the same
		// primary-error-wins contract as the race below — the primary's
		// diagnosis names the authoritative shard, replica errors are
		// secondary).
		h.failovers.Add(1)
		base := h.next.Add(1)
		for attempt := 0; attempt < len(h.Replicas)-1; attempt++ {
			idx := 1 + int((base+uint64(attempt))%uint64(len(h.Replicas)-1))
			h.hedges.Add(1)
			hedge = h.Replicas[idx].Go(req)
			<-hedge.Done
			if hedge.Err == nil {
				finish(out, hedge)
				return
			}
		}
		finish(out, primary)
		return
	case <-hedgeAfter:
		hedge = h.issueHedge(req)
	}

	// Both in flight: first success wins; two failures surface the
	// primary's error.
	select {
	case <-primary.Done:
		if primary.Err == nil {
			finish(out, primary)
			return
		}
		<-hedge.Done
		if hedge.Err == nil {
			h.wins.Add(1)
			finish(out, hedge)
			return
		}
		finish(out, primary)
	case <-hedge.Done:
		if hedge.Err == nil {
			h.wins.Add(1)
			finish(out, hedge)
			return
		}
		<-primary.Done
		finish(out, primary)
	}
}

// CallSync issues req and blocks for the (possibly hedged) response.
func (h *Hedged) CallSync(req *rpc.Request) (*rpc.Response, error) {
	call := h.Go(req)
	<-call.Done
	return call.Resp, call.Err
}

// issueHedge sends req to the next replica in rotation. The rotation
// counter reduces modulo the replica count in uint64 space before the
// int conversion: converting a counter past MaxInt64 first would go
// negative and index out of range (or hedge against the primary).
func (h *Hedged) issueHedge(req *rpc.Request) *rpc.Call {
	h.hedges.Add(1)
	idx := 1 + int(h.next.Add(1)%uint64(len(h.Replicas)-1))
	return h.Replicas[idx].Go(req)
}

func finish(out *rpc.Call, from *rpc.Call) {
	out.Resp, out.Err = from.Resp, from.Err
	close(out.Done)
}

// Close implements rpc.Caller, closing every replica connection.
func (h *Hedged) Close() error {
	var firstErr error
	for _, r := range h.Replicas {
		if err := r.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

var _ rpc.Caller = (*Hedged)(nil)
