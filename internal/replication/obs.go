package replication

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/rpc"
)

// RegisterMetrics exports the hedged caller's counters and its replica
// set's breaker state to reg as snapshot-time probes under prefix
// (e.g. "replication.sparse1."). The serving path is untouched: the
// probes read the same atomics and health snapshot the accessors
// expose, once per registry snapshot.
func (h *Hedged) RegisterMetrics(reg *obs.Registry, prefix string) {
	reg.RegisterProbeGroup(func(emit func(string, int64)) {
		emit(prefix+"hedges", h.Hedges())
		emit(prefix+"wins", h.Wins())
		emit(prefix+"failovers", h.Failovers())
		emit(prefix+"failover_attempts", h.FailoverAttempts())
		emit(prefix+"enabled", int64(h.EnabledReplicas()))
		hs := h.HealthSnapshot()
		emit(prefix+"ejected", int64(hs.Ejected))
		var ejections, recoveries, probes, successes, failures int64
		for _, r := range hs.Replicas {
			ejections += r.Ejections
			recoveries += r.Recoveries
			probes += r.Probes
			successes += r.Successes
			failures += r.Failures
		}
		emit(prefix+"ejections", ejections)
		emit(prefix+"recoveries", recoveries)
		emit(prefix+"probes", probes)
		emit(prefix+"call_successes", successes)
		emit(prefix+"call_failures", failures)
	})
}

// ObserveCaller wraps c so every call's completion latency is folded
// into hist. A call still outstanding after bound is counted into lost
// and abandoned by the observer: failure injection swaps Unresponsive()
// callers into slots, and an observer goroutine parked on a Done that
// never closes would outlive Close (the chaos tests assert goroutine
// settle). Waiting on Done from a side goroutine is safe — completion
// closes the channel, so every waiter wakes.
//
// With a nil hist and lost (a discarding registry) c is returned
// unwrapped, so the uninstrumented path spawns nothing.
func ObserveCaller(c rpc.Caller, hist *obs.Histogram, lost *obs.Counter, bound time.Duration) rpc.Caller {
	if hist == nil && lost == nil {
		return c
	}
	if bound <= 0 {
		bound = time.Second
	}
	return &observedCaller{inner: c, hist: hist, lost: lost, bound: bound}
}

type observedCaller struct {
	inner rpc.Caller
	hist  *obs.Histogram
	lost  *obs.Counter
	bound time.Duration
}

func (o *observedCaller) Go(req *rpc.Request) *rpc.Call {
	call := o.inner.Go(req)
	start := time.Now()
	go func() {
		select {
		case <-call.Done:
			o.hist.Observe(int64(time.Since(start)))
		case <-netsim.After(o.bound):
			o.lost.Inc()
		}
	}()
	return call
}

func (o *observedCaller) Close() error { return o.inner.Close() }

var _ rpc.Caller = (*observedCaller)(nil)
