package replication

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/model"
	"repro/internal/sharding"
)

func testModelAndPlans(t *testing.T) (*model.Model, *sharding.Plan, *sharding.Plan) {
	t.Helper()
	cfg := model.DRM2()
	// Shrink tables so Build is instant; ratios preserved.
	for i := range cfg.Tables {
		cfg.Tables[i].Rows = 64
	}
	m := model.Build(cfg)
	singular := sharding.Singular(&cfg)
	dist, err := sharding.CapacityBalanced(&cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	return m, singular, dist
}

func spec() ServerSpec {
	return ServerSpec{Name: "SC-Large", Cores: 40, TargetUtilization: 0.5, MemoryBytes: 1 << 30}
}

func TestAdviseSingular(t *testing.T) {
	m, singular, _ := testModelAndPlans(t)
	// 10ms of main CPU per request, 20 usable core-seconds per second per
	// server → 2000 QPS per server.
	adv, err := Advise(m, singular, Load{MainCPUPerRequest: 10 * time.Millisecond}, spec(), 5000)
	if err != nil {
		t.Fatal(err)
	}
	if adv.MainReplicas != 3 || adv.TotalServers != 3 {
		t.Errorf("replicas = %d/%d, want 3/3", adv.MainReplicas, adv.TotalServers)
	}
	if adv.TotalMemoryBytes != 3*m.TotalBytes() {
		t.Errorf("singular replication must duplicate the whole model: %d", adv.TotalMemoryBytes)
	}
}

func TestAdviseDistributedDecouplesMemory(t *testing.T) {
	m, singular, dist := testModelAndPlans(t)
	load := Load{
		MainCPUPerRequest:   10 * time.Millisecond,
		SparseCPUPerRequest: []time.Duration{200 * time.Microsecond, 200 * time.Microsecond, 200 * time.Microsecond, 200 * time.Microsecond},
	}
	s, err := Advise(m, singular, load, spec(), 5000)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Advise(m, dist, load, spec(), 5000)
	if err != nil {
		t.Fatal(err)
	}
	// Same dense-driven main replica count...
	if d.MainReplicas != s.MainReplicas {
		t.Errorf("main replicas %d vs %d", d.MainReplicas, s.MainReplicas)
	}
	// ...but sparse shards replicate on their own (tiny) load.
	for i, n := range d.SparseReplicas {
		if n != 1 {
			t.Errorf("shard %d replicas = %d, want 1 (load is tiny)", i+1, n)
		}
	}
	// The headline: fleet memory is far lower, because main replicas
	// carry only dense parameters.
	if d.TotalMemoryBytes >= s.TotalMemoryBytes {
		t.Errorf("distributed fleet memory %d should be < singular %d", d.TotalMemoryBytes, s.TotalMemoryBytes)
	}
	if d.MemoryPerQPS() >= s.MemoryPerQPS() {
		t.Error("memory per QPS should improve under distribution")
	}
	out := Compare(s, d)
	if !strings.Contains(out, "cuts fleet model memory") {
		t.Errorf("Compare output missing ratio line:\n%s", out)
	}
}

func TestAdviseScalesWithQPS(t *testing.T) {
	m, singular, _ := testModelAndPlans(t)
	load := Load{MainCPUPerRequest: 10 * time.Millisecond}
	lo, err := Advise(m, singular, load, spec(), 100)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Advise(m, singular, load, spec(), 50000)
	if err != nil {
		t.Fatal(err)
	}
	if lo.MainReplicas != 1 {
		t.Errorf("low QPS should need 1 replica, got %d", lo.MainReplicas)
	}
	if hi.MainReplicas != 25 {
		t.Errorf("50k QPS at 2k/server should need 25 replicas, got %d", hi.MainReplicas)
	}
}

func TestAdviseErrors(t *testing.T) {
	m, singular, dist := testModelAndPlans(t)
	load := Load{MainCPUPerRequest: time.Millisecond}
	if _, err := Advise(m, singular, load, spec(), 0); err == nil {
		t.Error("zero QPS should fail")
	}
	bad := spec()
	bad.TargetUtilization = 1.5
	if _, err := Advise(m, singular, load, bad, 100); err == nil {
		t.Error("bad utilization should fail")
	}
	if _, err := Advise(m, dist, load, spec(), 100); err == nil {
		t.Error("missing sparse loads should fail")
	}
	tiny := spec()
	tiny.MemoryBytes = 1
	if _, err := Advise(m, singular, load, tiny, 100); err == nil {
		t.Error("model exceeding server memory should fail for singular")
	}
	if _, err := Advise(m, dist, Load{
		MainCPUPerRequest:   time.Millisecond,
		SparseCPUPerRequest: make([]time.Duration, dist.NumShards),
	}, tiny, 100); err == nil {
		t.Error("shard exceeding server memory should fail")
	}
}

func TestReplicaMonotonicityProperty(t *testing.T) {
	m, singular, _ := testModelAndPlans(t)
	f := func(q1, q2 float64) bool {
		q1, q2 = math.Abs(q1), math.Abs(q2)
		if q1 == 0 || q2 == 0 || math.IsInf(q1, 0) || math.IsInf(q2, 0) || q1 > 1e9 || q2 > 1e9 {
			return true
		}
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		load := Load{MainCPUPerRequest: 5 * time.Millisecond}
		a1, err1 := Advise(m, singular, load, spec(), q1)
		a2, err2 := Advise(m, singular, load, spec(), q2)
		if err1 != nil || err2 != nil {
			return false
		}
		return a1.MainReplicas <= a2.MainReplicas && a1.TotalMemoryBytes <= a2.TotalMemoryBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
