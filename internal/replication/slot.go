package replication

import (
	"sync/atomic"

	"repro/internal/rpc"
)

// Slot is a swappable rpc.Caller: a stable identity a Hedged replica set
// can hold while the caller behind it is torn down and replaced (a
// killed server, a revived one, a replacement replica rebuilt from a
// peer). Swaps are atomic with respect to in-flight Go calls — a call
// issued just before a swap completes on the old caller; calls issued
// after route to the new one.
type Slot struct {
	cur atomic.Pointer[callerBox]
}

// callerBox wraps the interface value so an atomic.Pointer can hold it.
type callerBox struct{ c rpc.Caller }

// NewSlot wraps an initial caller.
func NewSlot(c rpc.Caller) *Slot {
	s := &Slot{}
	s.cur.Store(&callerBox{c: c})
	return s
}

// Go implements rpc.Caller on the current occupant.
func (s *Slot) Go(req *rpc.Request) *rpc.Call { return s.cur.Load().c.Go(req) }

// Close implements rpc.Caller, closing the current occupant.
func (s *Slot) Close() error { return s.cur.Load().c.Close() }

// Swap installs a new caller and returns the previous one (which the
// caller of Swap owns and should Close when its in-flight calls are
// drained or abandoned).
func (s *Slot) Swap(c rpc.Caller) rpc.Caller {
	return s.cur.Swap(&callerBox{c: c}).c
}

// Current returns the occupant without swapping.
func (s *Slot) Current() rpc.Caller { return s.cur.Load().c }

var _ rpc.Caller = (*Slot)(nil)

// Unresponsive returns a caller that models a hung or partitioned
// server: calls are accepted but never answered (Done never closes).
// Failure injection swaps one into a Slot — unlike a closed connection,
// which fails promptly, silence is the failure mode health ejection
// exists for.
func Unresponsive() rpc.Caller { return unresponsive{} }

type unresponsive struct{}

func (unresponsive) Go(req *rpc.Request) *rpc.Call {
	return &rpc.Call{Req: req, Done: make(chan struct{})}
}

func (unresponsive) Close() error { return nil }
