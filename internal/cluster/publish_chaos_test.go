package cluster_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/sharding"
	"repro/internal/workload"
)

// TestPublishChaosIdentity is the freshness control plane's chaos check:
// a replicated, tiered deployment replays a skewed scored stream from
// concurrent clients while a publisher hammers identity delta sets
// through the sparse.update.* epoch cutover, a live Rebalance migrates
// tables between shards, and a replica is then torn down and rebuilt
// from a surviving peer. Every score must stay byte-identical to an
// undisturbed control — a publish racing a migration may fail and retry
// (the endpoints moved under it), but it must never corrupt a lookup.
// Run under -race in CI, it doubles as the race sweep over epoch
// cutovers racing the lock-free read path, migration installs, hedged
// calls, and replica slot swaps.
func TestPublishChaosIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := smallModel()
	m := model.Build(cfg)

	boot := func() (*cluster.Cluster, *serve.Replayer) {
		pooling := workload.EstimatePooling(workload.NewGenerator(cfg, 5), 50)
		plan, err := sharding.LoadBalanced(&cfg, 4, pooling)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := cluster.Boot(m, plan, cluster.Options{
			Seed: 11, Tier: tierFor(&cfg),
			SparseReplicas: 2, HedgeDelay: 25 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Close)
		client, err := cl.DialMain()
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { client.Close() })
		return cl, serve.NewReplayer(client)
	}

	// Heat on shard 1's tables gives the rebalancer real moves to make.
	newStream := func(cl *cluster.Cluster, n int) []*workload.Request {
		gen := workload.NewGenerator(cfg, 23)
		gen.EnableRowSkew(1.4)
		skew := make(map[int]float64)
		for _, id := range cl.Plan.Shards[0].Tables {
			skew[id] = 6
		}
		return workload.ApplySkew(gen.GenerateBatch(n), skew)
	}

	const n = 36
	const workers = 3

	// Control: the same deployment, replayed serially, untouched.
	control, rep := boot()
	stream := newStream(control, n)
	if warm := rep.RunSerial(stream[:8]); warm.Failed() > 0 {
		t.Fatal(warm.Errors[0])
	}
	want, res := rep.RunSerialScored(stream)
	if res.Failed() > 0 {
		t.Fatal(res.Errors[0])
	}

	chaos, chaosRep := boot()
	if warm := chaosRep.RunSerial(newStream(chaos, n)[:8]); warm.Failed() > 0 {
		t.Fatal(warm.Errors[0])
	}
	chaosStream := newStream(chaos, n)

	// identityDelta republishes currently-served rows of the given
	// tables; after migration the publisher re-routes them to wherever
	// the tables live now. The storm uses one table per boot shard (the
	// publisher only streams to shards hosting delta rows, and a move
	// can collapse these picks onto fewer shards — fine mid-chaos); the
	// final all-tables delta deterministically reaches every store.
	identityDelta := func(version uint64, tables []int) *core.DeltaSet {
		ds := &core.DeltaSet{Version: version}
		for _, id := range tables {
			rows := []int32{0, 1, int32(cfg.Tables[id].Rows - 1)}
			ds.Tables = append(ds.Tables, core.TableDelta{
				TableID: id, Rows: rows, Data: sourceRows(m, id, rows),
			})
		}
		return ds
	}
	stormTables := oneTablePerShard(chaos.Plan)
	allTables := make([]int, len(cfg.Tables))
	for id := range allTables {
		allTables[id] = id
	}

	got := make([][][]float32, workers)
	workerErrs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client, err := chaos.DialMain()
			if err != nil {
				workerErrs[w] = err
				return
			}
			defer client.Close()
			rep := serve.NewReplayer(client)
			for i := w; i < len(chaosStream); i += workers {
				scores, _, err := rep.Send(chaosStream[i])
				if err != nil {
					workerErrs[w] = err
					return
				}
				got[w] = append(got[w], scores)
			}
		}(w)
	}

	// Publisher: back-to-back epoch cutovers for the whole chaos window.
	// Individual publishes may fail while the migration moves their
	// endpoints; those must abort cleanly and the next attempt proceeds.
	stopPub := make(chan struct{})
	var pubWG sync.WaitGroup
	var published, pubFailed int
	pubWG.Add(1)
	go func() {
		defer pubWG.Done()
		version := uint64(0)
		for {
			select {
			case <-stopPub:
				return
			default:
			}
			version++
			if _, err := chaos.Publish(identityDelta(version, stormTables)); err != nil {
				pubFailed++
				continue
			}
			published++
		}
	}()

	// Chaos sequence under the scored traffic and the publish storm:
	// first a live migration, then a replica teardown + rebuild. (The
	// migrator refuses rebuilt stores, so the rebuild comes second; the
	// publisher embraces them — that's the point of the final publish.)
	report, rbErr := chaos.Rebalance(sharding.RebalanceOptions{MoveBudget: 6})
	var replaceErr error
	if rbErr == nil {
		chaos.KillReplica(0, 1)
		_, replaceErr = chaos.ReplaceReplica(0, 1)
	}

	wg.Wait()
	close(stopPub)
	pubWG.Wait()
	if rbErr != nil {
		t.Fatal(rbErr)
	}
	if replaceErr != nil {
		t.Fatal(replaceErr)
	}
	if !report.Moved() {
		t.Fatalf("rebalance against a 6x skew moved nothing: %v", report)
	}
	for w, err := range workerErrs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if published == 0 {
		t.Fatalf("no publish succeeded during the chaos window (%d failed attempts)", pubFailed)
	}

	// Byte-identity: every request's scores match the control's exactly,
	// wherever it landed relative to cutovers, moves, and the rebuild.
	for w := 0; w < workers; w++ {
		wi := 0
		for i := w; i < len(chaosStream); i += workers {
			requireSameScores(t, want[i], got[w][wi], "publish-chaos", i)
			wi++
		}
	}

	// With the dust settled, a publish must reach every distinct store —
	// including the rebuilt replica's, which no longer shares shard 1's
	// boot-time table store.
	final, err := chaos.Publish(identityDelta(chaos.PublishedVersion()+1, allTables))
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Events) != len(chaos.Plan.Shards)+1 {
		t.Fatalf("final publish hit %d endpoints, want %d (every shard + the rebuilt store)",
			len(final.Events), len(chaos.Plan.Shards)+1)
	}
	for _, sh := range chaos.Shards() {
		if sh.ModelVersion() != final.Version {
			t.Fatalf("%s at model version %d after final publish v%d", sh.ShardName, sh.ModelVersion(), final.Version)
		}
	}
	fin, res := chaosRep.RunSerialScored(chaosStream)
	if res.Failed() > 0 {
		t.Fatal(res.Errors[0])
	}
	for i := range fin {
		requireSameScores(t, want[i], fin[i], "post-chaos", i)
	}
}
