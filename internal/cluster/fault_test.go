package cluster_test

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/sharding"
	"repro/internal/workload"
)

// faultOptions is the replicated, health-ejecting deployment the fault
// tests drive.
func faultOptions() cluster.Options {
	return cluster.Options{
		Seed:           11,
		SparseReplicas: 2,
		// The delay must sit well above per-call service time (the health
		// race bounds are multiples of it), including under -race.
		HedgeDelay:  25 * time.Millisecond,
		HealthFails: 2,
		HealthProbe: 60 * time.Millisecond,
	}
}

func bootFault(t *testing.T, m *model.Model, cfg model.Config) (*cluster.Cluster, *serve.Replayer) {
	t.Helper()
	plan, err := sharding.CapacityBalanced(&cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.Boot(m, plan, faultOptions())
	if err != nil {
		t.Fatal(err)
	}
	client, err := cl.DialMain()
	if err != nil {
		cl.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return cl, serve.NewReplayer(client)
}

// TestReplicaFailureChaosIdentity is the degraded-fleet chaos check: a
// replica (the preferred primary of shard 1) is killed mid-scored-
// traffic, health ejection routes around it, a replacement rebuilds from
// the surviving peer and rejoins — and every score along the way must be
// byte-identical to an unfailed control deployment. After both clusters
// close, the process must settle back to its starting goroutine count:
// no request handler, prober, or blackholed hedge wait may leak. Run
// under -race in CI, it doubles as the race sweep over slot swaps racing
// hedged calls and health reporting.
func TestReplicaFailureChaosIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := smallModel()
	m := model.Build(cfg)
	stream := workload.NewGenerator(cfg, 31).GenerateBatch(30)

	goroutinesBefore := runtime.NumGoroutine()

	func() {
		// Control: identical deployment, no failures.
		control, controlRep := bootFault(t, m, cfg)
		defer control.Close()
		want, res := controlRep.RunSerialScored(stream)
		if res.Failed() > 0 {
			t.Fatal(res.Errors[0])
		}

		// Chaos: same stream; kill shard 1's preferred primary a third of
		// the way in, replace it (rebuild from the surviving peer) two
		// thirds in, and let it rejoin via a probation probe.
		chaos, chaosRep := bootFault(t, m, cfg)
		defer chaos.Close()
		third := len(stream) / 3
		for i, req := range stream {
			switch i {
			case third:
				if err := chaos.KillReplica(0, 0); err != nil {
					t.Fatal(err)
				}
			case 2 * third:
				st, err := chaos.ReplaceReplica(0, 0)
				if err != nil {
					t.Fatal(err)
				}
				if st.Tables == 0 || st.Bytes == 0 {
					t.Fatalf("rebuild streamed nothing: %+v", st)
				}
				// The replacement serves a store rebuilt byte-identically
				// from the peer.
				store, err := chaos.ReplicaStore(0, 0)
				if err != nil {
					t.Fatal(err)
				}
				if store == chaos.Shards()[0] {
					t.Fatal("replacement still serves the shared store")
				}
				if store.Bytes() != chaos.Shards()[0].Bytes() {
					t.Fatalf("rebuilt store holds %d bytes, peer %d",
						store.Bytes(), chaos.Shards()[0].Bytes())
				}
			}
			got, _, err := chaosRep.Send(req)
			if err != nil {
				t.Fatalf("request %d: %v", i, err)
			}
			requireSameScores(t, want[i], got, "fault", i)
		}

		// The dead window must actually have been survived by ejection:
		// the killed replica took strikes and left the rotation.
		snap := chaos.HealthSnapshots()["sparse1"]
		if len(snap.Replicas) != 2 {
			t.Fatalf("health snapshot = %+v", snap)
		}
		if snap.Replicas[0].Ejections == 0 {
			t.Error("killed primary was never ejected")
		}

		// Give the prober a chance to re-admit the replacement, then
		// prove it serves: the rebuilt replica must answer scored traffic
		// identically once recovered.
		deadline := time.Now().Add(2 * time.Second)
		for {
			got, _, err := chaosRep.Send(stream[0])
			if err != nil {
				t.Fatal(err)
			}
			requireSameScores(t, want[0], got, "recovered", 0)
			s := chaos.HealthSnapshots()["sparse1"]
			if s.Ejected == 0 && s.Replicas[0].Recoveries > 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replacement never rejoined the rotation: %+v", s)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Goroutine-leak check: both clusters (and their clients) are closed;
	// readLoops, servers, and hedge waits must all unwind. Settle-loop
	// because connection teardown is asynchronous.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= goroutinesBefore+2 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d before, %d after close\n%s",
				goroutinesBefore, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestReviveReplicaRejoins: a killed replica whose server comes back
// (same store — the process restarted) is re-admitted by a probation
// probe without a rebuild.
func TestReviveReplicaRejoins(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := smallModel()
	m := model.Build(cfg)
	chaos, rep := bootFault(t, m, cfg)
	defer chaos.Close()
	stream := workload.NewGenerator(cfg, 7).GenerateBatch(12)

	if res := rep.RunSerial(stream[:4]); res.Failed() > 0 {
		t.Fatal(res.Errors[0])
	}
	// Kill shard 2's preferred primary: every request's primary pick
	// lands on the silent replica until it is ejected, so strikes — and
	// later probation probes — are deterministic.
	if err := chaos.KillReplica(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := chaos.KillReplica(1, 0); err == nil {
		t.Fatal("double kill must error")
	}
	if res := rep.RunSerial(stream[4:8]); res.Failed() > 0 {
		t.Fatal(res.Errors[0])
	}
	if s := chaos.HealthSnapshots()["sparse2"]; s.Replicas[0].Ejections == 0 {
		t.Fatalf("killed primary was never ejected: %+v", s)
	}
	if err := chaos.ReviveReplica(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := chaos.ReviveReplica(1, 0); err == nil {
		t.Fatal("double revive must error")
	}
	// Drive traffic until the prober re-admits it — recovery must be a
	// real probe success, not a vacuous never-ejected pass.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if res := rep.RunSerial(stream[8:]); res.Failed() > 0 {
			t.Fatal(res.Errors[0])
		}
		if s := chaos.HealthSnapshots()["sparse2"]; s.Ejected == 0 && s.Replicas[0].Recoveries > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("revived replica never rejoined: %+v", chaos.HealthSnapshots()["sparse2"])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplaceReplicaGuards pins the orchestration guards:
// replacing a live replica, addressing a bogus replica, and rebuilding
// with no surviving peer must all error cleanly.
func TestReplaceReplicaGuards(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := smallModel()
	m := model.Build(cfg)

	// Health ejection without a hedge timer cannot detect silence: the
	// configuration is rejected at boot.
	badOpts := faultOptions()
	badOpts.HedgeDelay = 0
	plan, err := sharding.CapacityBalanced(&cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Boot(m, plan, badOpts); err == nil {
		t.Error("HealthFails without HedgeDelay must be rejected")
	}

	chaos, _ := bootFault(t, m, cfg)
	defer chaos.Close()

	if _, err := chaos.ReplaceReplica(0, 0); err == nil {
		t.Error("replacing a live replica must error")
	}
	if _, err := chaos.ReplaceReplica(0, 9); err == nil {
		t.Error("bogus replica index must error")
	}
	if _, err := chaos.ReplaceReplica(9, 0); err == nil {
		t.Error("bogus shard index must error")
	}
	if err := chaos.KillReplica(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := chaos.KillReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := chaos.ReplaceReplica(0, 0); err == nil {
		t.Error("rebuild with no surviving peer must error")
	}
	if err := chaos.ReviveReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := chaos.ReplaceReplica(0, 0); err != nil {
		t.Fatalf("replace with a revived peer: %v", err)
	}
	// A replaced replica serves a private store; online resharding would
	// update only one copy per shard, so the migrator must refuse.
	if _, err := chaos.Migrator(); err == nil {
		t.Error("rebalance against a fleet with a replaced replica must be refused")
	}
	// Health snapshots stay well-formed with the whole shard dark.
	if snap := chaos.HealthSnapshots()["sparse1"]; len(snap.Replicas) != 2 {
		t.Errorf("snapshot = %+v", snap)
	}
}
