// Package cluster boots a complete distributed-inference deployment on
// loopback TCP: one main shard (engine + RPC service) plus the sparse
// shards a plan calls for, each with its own tracer, injected network
// links, and platform model. It is the in-process stand-in for the
// paper's reserved bare-metal servers "located in the same data centers
// as production recommendation ranking".
package cluster

import (
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/frontend"
	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/replication"
	"repro/internal/rpc"
	"repro/internal/sharding"
	"repro/internal/trace"
)

// Options tune a cluster boot.
type Options struct {
	// BatchSize overrides the model's default batch size (0 keeps it).
	BatchSize int
	// SparsePlatform selects the sparse shards' server class; defaults to
	// SC-Large as in the paper's apples-to-apples runs.
	SparsePlatform *platform.Platform
	// SpanCapacity sizes each recorder's span slab (default 1<<18).
	SpanCapacity int
	// Seed drives network jitter and clock-skew simulation.
	Seed int64
	// ClockSkew, when true, gives every shard a distinct simulated clock
	// offset (±up to 200ms) to exercise the analyzer's skew immunity.
	ClockSkew bool
	// Frontend, when non-nil, fronts the main shard with the SLA-aware
	// scheduler (dynamic batching + admission control) instead of the
	// direct one-request-per-call service.
	Frontend *frontend.Config
	// SparseReplicas serves every sparse shard from this many identical
	// servers (default 1). Sparse shards are stateless, so replicas share
	// one table store and one recorder.
	SparseReplicas int
	// HedgeDelay, with SparseReplicas > 1, hedges sparse RPCs against a
	// replica once the primary has been outstanding this long.
	HedgeDelay time.Duration
	// MainMaxInFlight bounds concurrent requests dispatched at the main
	// shard's RPC server (0 = unbounded): transport-level backpressure.
	MainMaxInFlight int
	// Tier, when non-nil, enables the tiered embedding store on every
	// sparse shard: a hot-row cache byte budget in front of cold-tier
	// storage encoded per the config's tier plan.
	Tier *core.TierConfig
}

// Cluster is a running deployment.
type Cluster struct {
	Model     *model.Model
	Plan      *sharding.Plan
	Registry  *rpc.Registry
	Collector *trace.Collector
	MainRec   *trace.Recorder

	Engine *core.Engine
	// Frontend is non-nil when Options.Frontend fronted the main shard.
	Frontend *frontend.Frontend
	// Hedged holds the per-service hedged callers when SparseReplicas > 1
	// (keyed like Registry services: "sparse1", ...).
	Hedged map[string]*replication.Hedged

	mainServer *rpc.Server
	sparse     []*rpc.Server
	shards     []*core.SparseShard
	clients    map[string]rpc.Caller
	// ctrlClients are plain (never hedged) connections the rebalancer's
	// control plane uses: hedging a migrate.commit would re-issue it to a
	// replica sharing the same table store and trip the protocol's
	// commit-without-begin guard.
	ctrlClients map[string]*rpc.Client

	// rebalanceMu serializes Rebalance passes (concurrent passes would
	// plan against each other's in-flight moves).
	rebalanceMu sync.Mutex
}

// gcTuneOnce relaxes the collector for measurement runs: the request
// path allocates several MB per request against a modest live heap, and
// default GOGC triggers collections frequently enough that GC assists
// visibly stretch operator spans. This is a measurement-harness decision,
// applied once per process at first cluster boot.
var gcTuneOnce sync.Once

// Boot materializes shards, starts all servers, connects all clients,
// and compiles the main-shard engine. Call Close to tear down.
func Boot(m *model.Model, plan *sharding.Plan, opts Options) (*Cluster, error) {
	gcTuneOnce.Do(func() { debug.SetGCPercent(400) })
	if opts.SpanCapacity == 0 {
		opts.SpanCapacity = 1 << 18
	}
	plat := platform.SCLarge()
	if opts.SparsePlatform != nil {
		plat = *opts.SparsePlatform
	}

	replicas := opts.SparseReplicas
	if replicas < 1 {
		replicas = 1
	}

	c := &Cluster{
		Model:       m,
		Plan:        plan,
		Registry:    rpc.NewRegistry(),
		Collector:   trace.NewCollector(),
		clients:     make(map[string]rpc.Caller),
		ctrlClients: make(map[string]*rpc.Client),
		Hedged:      make(map[string]*replication.Hedged),
	}
	c.MainRec = trace.NewRecorder("main", opts.SpanCapacity)
	c.Collector.Attach(c.MainRec)
	skew := skewFor(opts, 0)
	c.MainRec.SetClockSkew(skew)

	ok := false
	defer func() {
		if !ok {
			c.Close()
		}
	}()

	if plan.IsDistributed() {
		recs := make([]*trace.Recorder, plan.NumShards)
		for i := range recs {
			recs[i] = trace.NewRecorder(core.ServiceName(i+1), opts.SpanCapacity)
			recs[i].SetClockSkew(skewFor(opts, i+1))
			c.Collector.Attach(recs[i])
		}
		shards, err := core.MaterializeShardsTiered(m, plan, recs, opts.Tier)
		if err != nil {
			return nil, err
		}
		c.shards = shards
		for i, sh := range shards {
			sh.OpComputeScale = plat.OpComputeScale
			// Replica servers share the shard's table store and recorder:
			// sparse shards are stateless, so a replica is just another
			// front door to identical data.
			callers := make([]rpc.Caller, 0, replicas)
			for r := 0; r < replicas; r++ {
				profile := plat.Network(opts.Seed + int64(i)*7919 + int64(r)*104729)
				srv, err := rpc.NewServer("127.0.0.1:0", sh, rpc.ServerConfig{
					Recorder:        recs[i],
					ResponseLink:    profile.Response,
					BoilerplateCost: platform.BaseBoilerplate,
					ComputeScale:    plat.BoilerplateScale,
				})
				if err != nil {
					return nil, fmt.Errorf("cluster: starting %s: %w", sh.ShardName, err)
				}
				c.sparse = append(c.sparse, srv)
				if r == 0 {
					c.Registry.Register(sh.ShardName, srv.Addr())
				}
				client, err := rpc.Dial(srv.Addr(), profile.Request)
				if err != nil {
					return nil, fmt.Errorf("cluster: dialing %s: %w", sh.ShardName, err)
				}
				callers = append(callers, client)
			}
			if replicas == 1 {
				c.clients[sh.ShardName] = callers[0]
				continue
			}
			h, err := replication.NewHedged(callers, opts.HedgeDelay)
			if err != nil {
				return nil, err
			}
			c.Hedged[sh.ShardName] = h
			c.clients[sh.ShardName] = h
		}
	}

	// Pre-fault every table's storage so the first measured requests do
	// not pay page-in costs that later configurations (sharing the warm
	// process) would not — the moral equivalent of a production loader
	// touching the model after deserialization.
	for _, t := range m.Tables {
		touchTable(t)
	}

	eng, err := core.NewEngine(m, plan, core.EngineConfig{
		BatchSize: opts.BatchSize,
		Recorder:  c.MainRec,
		ClientFor: func(service string) (rpc.Caller, error) {
			cl, ok := c.clients[service]
			if !ok {
				return nil, fmt.Errorf("cluster: no client for %s", service)
			}
			return cl, nil
		},
	})
	if err != nil {
		return nil, err
	}
	c.Engine = eng

	var mainHandler rpc.Handler = &core.MainService{Engine: eng, Rec: c.MainRec}
	if opts.Frontend != nil {
		c.Frontend = frontend.New(eng, *opts.Frontend)
		mainHandler = &frontend.Service{F: c.Frontend, Rec: c.MainRec}
	}
	mainSrv, err := rpc.NewServer("127.0.0.1:0", mainHandler, rpc.ServerConfig{
		Recorder:        c.MainRec,
		BoilerplateCost: platform.BaseBoilerplate,
		MaxInFlight:     opts.MainMaxInFlight,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: starting main shard: %w", err)
	}
	c.mainServer = mainSrv
	c.Registry.Register("main", mainSrv.Addr())
	ok = true
	return c, nil
}

// touchTable walks a table's backing storage to fault it in.
func touchTable(t interface{ Bytes() int64 }) {
	switch tt := t.(type) {
	case *embedding.Dense:
		var sink float32
		for i := 0; i < len(tt.Data); i += 1024 {
			sink += tt.Data[i]
		}
		_ = sink
	default:
		// Quantized backends are built by transformation and already warm.
	}
}

// skewFor derives a deterministic per-shard clock offset.
func skewFor(opts Options, shard int) time.Duration {
	if !opts.ClockSkew {
		return 0
	}
	// Simple splitmix-style hash of (seed, shard) to ±200ms.
	x := uint64(opts.Seed)*0x9e3779b97f4a7c15 + uint64(shard+1)*0xbf58476d1ce4e5b9
	x ^= x >> 31
	ms := int64(x%401) - 200
	return time.Duration(ms) * time.Millisecond
}

// MainAddr returns the main shard's serving address.
func (c *Cluster) MainAddr() string { return c.mainServer.Addr() }

// DialMain connects a replayer client to the main shard.
func (c *Cluster) DialMain() (*rpc.Client, error) {
	return rpc.Dial(c.MainAddr(), nil)
}

// ResetTraces clears all recorded spans (used after warmup).
func (c *Cluster) ResetTraces() { c.Collector.Reset() }

// KillSparse abruptly stops the i-th sparse shard server (0-based), for
// failure-injection tests: in a serving fleet shards "may fail and need
// to restart".
func (c *Cluster) KillSparse(i int) {
	if i >= 0 && i < len(c.sparse) {
		c.sparse[i].Close()
	}
}

// Shards exposes the sparse shard services (nil for singular plans) —
// tests and the rebalancer introspect epochs and load summaries.
func (c *Cluster) Shards() []*core.SparseShard { return c.shards }

// Migrator builds the online-resharding driver for this deployment,
// addressing every sparse shard's primary server.
func (c *Cluster) Migrator() (*core.Migrator, error) {
	if !c.Plan.IsDistributed() {
		return nil, fmt.Errorf("cluster: singular deployments have nothing to reshard")
	}
	mg := &core.Migrator{Engine: c.Engine, Rec: c.MainRec, Shards: make(map[int]core.ShardEndpoint)}
	for i := 0; i < c.Plan.NumShards; i++ {
		name := core.ServiceName(i + 1)
		addr, err := c.Registry.Lookup(name)
		if err != nil {
			return nil, err
		}
		caller, ok := c.ctrlClients[name]
		if !ok {
			caller, err = rpc.DialPool(addr, nil, 1)
			if err != nil {
				return nil, fmt.Errorf("cluster: dialing control plane for %s: %w", name, err)
			}
			c.ctrlClients[name] = caller
		}
		mg.Shards[i+1] = core.ShardEndpoint{Service: name, Addr: addr, Caller: caller}
	}
	return mg, nil
}

// Rebalance runs one observe→plan→migrate→cutover pass against the
// shards' measured load, usable mid-replay: requests keep flowing while
// rows stream and the routing swap is atomic. The cluster's Plan field
// tracks the target so later passes (and introspection) see the current
// placement.
func (c *Cluster) Rebalance(opts sharding.RebalanceOptions) (*core.RebalanceReport, error) {
	c.rebalanceMu.Lock()
	defer c.rebalanceMu.Unlock()
	mg, err := c.Migrator()
	if err != nil {
		return nil, err
	}
	report, err := mg.Rebalance(opts)
	if err != nil {
		return nil, err
	}
	c.Plan = report.Plan.Target
	return report, nil
}

// TierStats snapshots every sparse shard's tiered-storage state (nil for
// singular plans) — resident cold/cache bytes and cache hit counters.
func (c *Cluster) TierStats() []core.TierStats {
	out := make([]core.TierStats, len(c.shards))
	for i, sh := range c.shards {
		out[i] = sh.TierSnapshot()
	}
	return out
}

// ResidentBytes sums the sparse shards' live storage footprints (cold
// tier plus hot-row caches) — the capacity a deployment provisions for.
func (c *Cluster) ResidentBytes() int64 {
	var n int64
	for _, sh := range c.shards {
		n += sh.Bytes()
	}
	return n
}

// MainStats snapshots the main server's backpressure gauges.
func (c *Cluster) MainStats() rpc.ServerStats {
	if c.mainServer == nil {
		return rpc.ServerStats{}
	}
	return c.mainServer.Stats()
}

// Close tears down the deployment; safe on partially built clusters.
// Order matters once a frontend is in play: stop admitting at the main
// server, drain the frontend's queue (its executions still need the
// sparse clients), then drop connections and sparse servers.
func (c *Cluster) Close() {
	if c.mainServer != nil {
		c.mainServer.Close()
	}
	if c.Frontend != nil {
		c.Frontend.Close()
	}
	for _, cl := range c.clients {
		cl.Close()
	}
	for _, cl := range c.ctrlClients {
		cl.Close()
	}
	for _, s := range c.sparse {
		s.Close()
	}
	for _, sh := range c.shards {
		sh.Close()
	}
}
