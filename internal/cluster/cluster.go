// Package cluster boots a complete distributed-inference deployment on
// loopback TCP: one main shard (engine + RPC service) plus the sparse
// shards a plan calls for, each with its own tracer, injected network
// links, and platform model. It is the in-process stand-in for the
// paper's reserved bare-metal servers "located in the same data centers
// as production recommendation ranking".
package cluster

import (
	"fmt"
	"io"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/frontend"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/replication"
	"repro/internal/rpc"
	"repro/internal/sharding"
	"repro/internal/trace"
)

// Options tune a cluster boot.
type Options struct {
	// BatchSize overrides the model's default batch size (0 keeps it).
	BatchSize int
	// SparsePlatform selects the sparse shards' server class; defaults to
	// SC-Large as in the paper's apples-to-apples runs.
	SparsePlatform *platform.Platform
	// SpanCapacity sizes each recorder's span slab (default 1<<18).
	SpanCapacity int
	// Seed drives network jitter and clock-skew simulation.
	Seed int64
	// ClockSkew, when true, gives every shard a distinct simulated clock
	// offset (±up to 200ms) to exercise the analyzer's skew immunity.
	ClockSkew bool
	// Frontend, when non-nil, fronts the main shard with the SLA-aware
	// scheduler (dynamic batching + admission control) instead of the
	// direct one-request-per-call service.
	Frontend *frontend.Config
	// SparseReplicas serves every sparse shard from this many identical
	// servers (default 1). Sparse shards are stateless, so replicas share
	// one table store and one recorder.
	SparseReplicas int
	// ActiveReplicas, with SparseReplicas > 1, boots only the first N
	// replica slots of every shard serving; the rest boot parked — no
	// server, an unresponsive slot, and disabled in the hedged rotation —
	// as reclaimable headroom the elastic scheduler can activate later
	// via SetActiveReplicas (a snapshot rebuild from a healthy peer). 0
	// boots every slot serving.
	ActiveReplicas int
	// HedgeDelay, with SparseReplicas > 1, hedges sparse RPCs against a
	// replica once the primary has been outstanding this long.
	HedgeDelay time.Duration
	// HealthFails, with SparseReplicas > 1, enables health-aware replica
	// management: a replica that fails (or is hedged past while silent)
	// this many calls in a row is ejected from the rotation until a
	// probation probe succeeds. 0 disables ejection.
	HealthFails int
	// HealthProbe is how often an ejected replica is offered one probe
	// request (default 250ms); only meaningful with HealthFails > 0.
	HealthProbe time.Duration
	// MainMaxInFlight bounds concurrent requests dispatched at the main
	// shard's RPC server (0 = unbounded): transport-level backpressure.
	MainMaxInFlight int
	// Tier, when non-nil, enables the tiered embedding store on every
	// sparse shard: a hot-row cache byte budget in front of cold-tier
	// storage encoded per the config's tier plan.
	Tier *core.TierConfig
	// ShardDir, when set, boots every sparse shard from its persistent v2
	// shard file (<ShardDir>/<model>.shardN, mmap-backed where the
	// platform allows) instead of materializing tables from the in-memory
	// model. Files must have been exported under the same plan and tier
	// precisions (shardtool export-v2); checksummed section headers
	// reject anything else. Tier still supplies the hot-row cache budget.
	ShardDir string
	// Obs receives the deployment's live metrics: every serving stage
	// registers counters, gauges, and latency histograms against it under
	// a stable namespace (engine.*, frontend.*, replication.*, sparseN.*,
	// rpc.main.*). Nil boots with obs.Discard(): every handle is nil and
	// the instrumented paths cost one predictable-nil branch.
	Obs *obs.Registry
	// TraceSample, when > 0, live-samples one of every TraceSample
	// requests end to end: the sampled trace's spans are teed from every
	// shard's recorder into an obs.Tracer that emits a per-request stage
	// breakdown (deadline misses are always sampled). 0 disables tracing.
	TraceSample int
}

// sparseReplica is one serving replica of a sparse shard: a server, the
// dialed client behind a swappable slot, and the table store it serves
// (the shard's shared store, or a private one rebuilt from a peer after
// ReplaceReplica). Guarded by Cluster.replicaMu.
type sparseReplica struct {
	shard   int // 0-based shard index
	idx     int // replica index within the shard
	store   *core.SparseShard
	rec     *trace.Recorder
	profile netsim.Profile
	slot    *replication.Slot
	srv     *rpc.Server // nil while killed
	client  rpc.Caller  // nil while killed
}

// Cluster is a running deployment.
type Cluster struct {
	Model     *model.Model
	Plan      *sharding.Plan
	Registry  *rpc.Registry
	Collector *trace.Collector
	MainRec   *trace.Recorder

	// Obs is the deployment's metrics registry (obs.Discard() when
	// Options.Obs was nil, so reads are always safe).
	Obs *obs.Registry
	// Tracer holds sampled live request traces when Options.TraceSample
	// was > 0 (nil otherwise).
	Tracer *obs.Tracer

	Engine *core.Engine
	// Frontend is non-nil when Options.Frontend fronted the main shard.
	Frontend *frontend.Frontend
	// Hedged holds the per-service hedged callers when SparseReplicas > 1
	// (keyed like Registry services: "sparse1", ...).
	Hedged map[string]*replication.Hedged

	mainServer *rpc.Server
	// replicas holds every sparse serving replica, per shard.
	replicas [][]*sparseReplica
	// rebuilt tracks replacement table stores created by ReplaceReplica,
	// closed with the cluster (the original shared stores live in shards).
	rebuilt []*core.SparseShard
	shards  []*core.SparseShard
	clients map[string]rpc.Caller
	// ctrlClients are plain (never hedged) connections the rebalancer's
	// control plane uses: hedging a migrate.commit would re-issue it to a
	// replica sharing the same table store and trip the protocol's
	// commit-without-begin guard.
	ctrlClients map[string]*rpc.Client
	// pubClients are plain (never hedged) connections the publisher's
	// control plane uses, keyed by server address because freshness
	// deltas address every distinct table store, not just each shard's
	// registered primary. Guarded by replicaMu.
	pubClients map[string]*rpc.Client
	// shardClosers releases mmap-backed shard-file storage when the
	// cluster booted from Options.ShardDir; closed after the shards that
	// serve views into it.
	shardClosers []io.Closer

	plat platform.Platform
	opts Options
	// active is how many replica slots per shard currently serve (the
	// rest are parked). Guarded by replicaMu.
	active int

	// replicaMu serializes failure injection and recovery against each
	// other and against Close.
	replicaMu sync.Mutex
	// rebalanceMu serializes Rebalance passes (concurrent passes would
	// plan against each other's in-flight moves).
	rebalanceMu sync.Mutex

	// publishMu serializes Publish calls: concurrent publishes of the
	// same version would race their begin/commit pairs on shared stores.
	publishMu sync.Mutex
	// pubVersion is the highest delta-set version this cluster has
	// published (monotonic); the freshness probe reports each store's lag
	// behind it.
	pubVersion atomic.Uint64
	// pubMu guards pubEvents, the cumulative freshness timeline.
	pubMu     sync.Mutex
	pubEvents []core.PublishEvent
}

// gcTuneOnce relaxes the collector for measurement runs: the request
// path allocates several MB per request against a modest live heap, and
// default GOGC triggers collections frequently enough that GC assists
// visibly stretch operator spans. This is a measurement-harness decision,
// applied once per process at first cluster boot.
var gcTuneOnce sync.Once

// Boot materializes shards, starts all servers, connects all clients,
// and compiles the main-shard engine. Call Close to tear down.
func Boot(m *model.Model, plan *sharding.Plan, opts Options) (*Cluster, error) {
	gcTuneOnce.Do(func() { debug.SetGCPercent(400) })
	if opts.SpanCapacity == 0 {
		opts.SpanCapacity = 1 << 18
	}
	plat := platform.SCLarge()
	if opts.SparsePlatform != nil {
		plat = *opts.SparsePlatform
	}

	replicas := opts.SparseReplicas
	if replicas < 1 {
		replicas = 1
	}
	active := opts.ActiveReplicas
	if active == 0 {
		active = replicas
	}
	if active < 1 || active > replicas {
		return nil, fmt.Errorf("cluster: ActiveReplicas %d out of range [1,%d]", opts.ActiveReplicas, replicas)
	}
	if opts.HealthFails > 0 && opts.HedgeDelay <= 0 {
		// Slow-strike detection hangs off the hedge timer: without it a
		// silent replica produces no signal to count, and the breaker's
		// wait bounds (multiples of the delay) vanish.
		return nil, fmt.Errorf("cluster: HealthFails requires HedgeDelay > 0 (health ejection needs the hedge timer to detect silence)")
	}

	c := &Cluster{
		Model:       m,
		Plan:        plan,
		Registry:    rpc.NewRegistry(),
		Collector:   trace.NewCollector(),
		clients:     make(map[string]rpc.Caller),
		ctrlClients: make(map[string]*rpc.Client),
		pubClients:  make(map[string]*rpc.Client),
		Hedged:      make(map[string]*replication.Hedged),
		plat:        plat,
		opts:        opts,
		active:      active,
	}
	c.Obs = opts.Obs
	if c.Obs == nil {
		c.Obs = obs.Discard()
	}
	if opts.TraceSample > 0 {
		c.Tracer = obs.NewTracer(c.Obs, obs.TracerConfig{
			SampleEvery:    opts.TraceSample,
			OnDeadlineMiss: true,
		})
	}
	c.MainRec = trace.NewRecorder("main", opts.SpanCapacity)
	c.Collector.Attach(c.MainRec)
	if c.Tracer != nil {
		c.MainRec.SetSink(c.Tracer)
	}
	skew := skewFor(opts, 0)
	c.MainRec.SetClockSkew(skew)

	ok := false
	defer func() {
		if !ok {
			c.Close()
		}
	}()

	if plan.IsDistributed() {
		recs := make([]*trace.Recorder, plan.NumShards)
		for i := range recs {
			recs[i] = trace.NewRecorder(core.ServiceName(i+1), opts.SpanCapacity)
			recs[i].SetClockSkew(skewFor(opts, i+1))
			c.Collector.Attach(recs[i])
			if c.Tracer != nil {
				recs[i].SetSink(c.Tracer)
			}
		}
		var shards []*core.SparseShard
		var err error
		if opts.ShardDir != "" {
			shards, err = c.openShardDir(m, plan, recs, opts)
		} else {
			shards, err = core.MaterializeShardsTiered(m, plan, recs, opts.Tier)
		}
		if err != nil {
			return nil, err
		}
		c.shards = shards
		// Freshness probe: published high water vs the slowest shared
		// store. Atomic reads only — replica-private rebuilt stores are
		// covered by their own <shard>.model_version gauges.
		c.Obs.RegisterProbeGroup(func(emit func(string, int64)) {
			pv := c.pubVersion.Load()
			min := pv
			for _, sh := range shards {
				if v := sh.ModelVersion(); v < min {
					min = v
				}
			}
			emit("publish.min_model_version", int64(min))
			emit("publish.lag", int64(pv-min))
		})
		c.replicas = make([][]*sparseReplica, len(shards))
		// A replica's measured call latency includes the hedge bound's
		// worth of patience: an observer still waiting past this gives up
		// and books the call as lost (replicas swapped for Unresponsive()
		// by failure injection would otherwise pin observer goroutines).
		callBound := 8 * opts.HedgeDelay
		if callBound < 250*time.Millisecond {
			callBound = 250 * time.Millisecond
		}
		for i, sh := range shards {
			sh.OpComputeScale = plat.OpComputeScale
			sh.SetObs(c.Obs)
			// Replica servers share the shard's table store and recorder:
			// sparse shards are stateless, so a replica is just another
			// front door to identical data. Each sits behind a swappable
			// Slot so failure injection and recovery can tear a server
			// down and splice a replacement in without touching the
			// hedged caller above it.
			callers := make([]rpc.Caller, 0, replicas)
			for r := 0; r < replicas; r++ {
				rep := &sparseReplica{
					shard: i, idx: r, store: sh, rec: recs[i],
					profile: plat.Network(opts.Seed + int64(i)*7919 + int64(r)*104729),
				}
				if r < active {
					if err := c.startReplica(rep); err != nil {
						return nil, err
					}
					rep.slot = replication.NewSlot(rep.client)
				} else {
					// Parked headroom: no server runs and the slot goes
					// unresponsive; the replica index is also disabled in
					// the hedged rotation below, so nothing routes here
					// until SetActiveReplicas activates it.
					rep.slot = replication.NewSlot(replication.Unresponsive())
				}
				c.replicas[i] = append(c.replicas[i], rep)
				if r == 0 {
					c.Registry.Register(sh.ShardName, rep.srv.Addr())
				}
				caller := rpc.Caller(rep.slot)
				if replicas > 1 {
					// Wrap the slot, not the dialed client, so latency
					// accounting follows the replica identity across
					// ReplaceReplica swaps.
					svcPrefix := fmt.Sprintf("replication.%s.replica%d.", sh.ShardName, r)
					caller = replication.ObserveCaller(caller,
						c.Obs.Histogram(svcPrefix+"call_ns"),
						c.Obs.Counter(svcPrefix+"lost"), callBound)
				}
				callers = append(callers, caller)
			}
			if replicas == 1 {
				c.clients[sh.ShardName] = callers[0]
				continue
			}
			h, err := replication.NewHedged(callers, opts.HedgeDelay)
			if err != nil {
				return nil, err
			}
			for r := active; r < replicas; r++ {
				h.SetEnabled(r, false)
			}
			if opts.HealthFails > 0 {
				h.Health = replication.NewHealthTracker(len(callers), replication.HealthConfig{
					FailThreshold: opts.HealthFails,
					ProbeEvery:    opts.HealthProbe,
				})
			}
			h.RegisterMetrics(c.Obs, "replication."+sh.ShardName+".")
			c.Hedged[sh.ShardName] = h
			c.clients[sh.ShardName] = h
		}
	}

	// Pre-fault every table's storage so the first measured requests do
	// not pay page-in costs that later configurations (sharing the warm
	// process) would not — the moral equivalent of a production loader
	// touching the model after deserialization. Shard-file boots skip
	// it: demand paging the mmap'd tables is the point of that path, and
	// the shards do not serve from the in-memory model anyway.
	if opts.ShardDir == "" {
		for _, t := range m.Tables {
			touchTable(t)
		}
	}

	eng, err := core.NewEngine(m, plan, core.EngineConfig{
		BatchSize: opts.BatchSize,
		Recorder:  c.MainRec,
		Obs:       c.Obs,
		ClientFor: func(service string) (rpc.Caller, error) {
			cl, ok := c.clients[service]
			if !ok {
				return nil, fmt.Errorf("cluster: no client for %s", service)
			}
			return cl, nil
		},
	})
	if err != nil {
		return nil, err
	}
	c.Engine = eng

	var mainHandler rpc.Handler = &core.MainService{Engine: eng, Rec: c.MainRec, Tracer: c.Tracer}
	if opts.Frontend != nil {
		fcfg := *opts.Frontend
		fcfg.Obs = c.Obs
		fcfg.Tracer = c.Tracer
		c.Frontend = frontend.New(eng, fcfg)
		mainHandler = &frontend.Service{F: c.Frontend, Rec: c.MainRec}
	}
	mainSrv, err := rpc.NewServer("127.0.0.1:0", mainHandler, rpc.ServerConfig{
		Recorder:        c.MainRec,
		BoilerplateCost: platform.BaseBoilerplate,
		MaxInFlight:     opts.MainMaxInFlight,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: starting main shard: %w", err)
	}
	c.mainServer = mainSrv
	c.Registry.Register("main", mainSrv.Addr())
	c.Obs.RegisterProbeGroup(func(emit func(string, int64)) {
		s := mainSrv.Stats()
		emit("rpc.main.inflight", s.InFlight)
		emit("rpc.main.peak_inflight", s.PeakInFlight)
		emit("rpc.main.overloads", s.Overloads)
	})
	ok = true
	return c, nil
}

// openShardDir boots every sparse shard from its persistent v2 shard
// file — the paper's "serialized from parameter servers" artifact —
// serving embedding reads straight out of mmap-backed storage where the
// platform allows. Lookups are bit-identical to a MaterializeShardsTiered
// boot from the same model under the same tier plan.
func (c *Cluster) openShardDir(m *model.Model, plan *sharding.Plan, recs []*trace.Recorder, opts Options) ([]*core.SparseShard, error) {
	shards := make([]*core.SparseShard, 0, plan.NumShards)
	fail := func(err error) ([]*core.SparseShard, error) {
		for _, sh := range shards {
			sh.Close()
		}
		return nil, err
	}
	for i := 0; i < plan.NumShards; i++ {
		path := core.ShardFilePath(opts.ShardDir, m.Config.Name, i+1)
		sh, shard, closer, err := core.OpenShardFile(path, recs[i])
		if err != nil {
			return fail(fmt.Errorf("cluster: booting shard %d from %s: %w", i+1, path, err))
		}
		// The closer outlives the shard (tables may be views into the
		// mapping); Close releases them after the shards.
		c.shardClosers = append(c.shardClosers, closer)
		if shard != i+1 {
			sh.Close()
			return fail(fmt.Errorf("cluster: %s holds shard %d, want %d", path, shard, i+1))
		}
		if opts.Tier != nil {
			sh.SetTier(opts.Tier)
		}
		shards = append(shards, sh)
	}
	return shards, nil
}

// startReplica boots a server for the replica's store and dials its
// client; the caller owns splicing the client into the replica's slot.
func (c *Cluster) startReplica(rep *sparseReplica) error {
	srv, err := rpc.NewServer("127.0.0.1:0", rep.store, rpc.ServerConfig{
		Recorder:        rep.rec,
		ResponseLink:    rep.profile.Response,
		BoilerplateCost: platform.BaseBoilerplate,
		ComputeScale:    c.plat.BoilerplateScale,
	})
	if err != nil {
		return fmt.Errorf("cluster: starting %s replica %d: %w", rep.store.ShardName, rep.idx, err)
	}
	client, err := rpc.Dial(srv.Addr(), rep.profile.Request)
	if err != nil {
		srv.Close()
		return fmt.Errorf("cluster: dialing %s replica %d: %w", rep.store.ShardName, rep.idx, err)
	}
	rep.srv, rep.client = srv, client
	return nil
}

// touchTable walks a table's backing storage to fault it in.
func touchTable(t interface{ Bytes() int64 }) {
	switch tt := t.(type) {
	case *embedding.Dense:
		var sink float32
		for i := 0; i < len(tt.Data); i += 1024 {
			sink += tt.Data[i]
		}
		_ = sink
	default:
		// Quantized backends are built by transformation and already warm.
	}
}

// skewFor derives a deterministic per-shard clock offset.
func skewFor(opts Options, shard int) time.Duration {
	if !opts.ClockSkew {
		return 0
	}
	// Simple splitmix-style hash of (seed, shard) to ±200ms.
	x := uint64(opts.Seed)*0x9e3779b97f4a7c15 + uint64(shard+1)*0xbf58476d1ce4e5b9
	x ^= x >> 31
	ms := int64(x%401) - 200
	return time.Duration(ms) * time.Millisecond
}

// MainAddr returns the main shard's serving address.
func (c *Cluster) MainAddr() string { return c.mainServer.Addr() }

// DialMain connects a replayer client to the main shard.
func (c *Cluster) DialMain() (*rpc.Client, error) {
	return rpc.Dial(c.MainAddr(), nil)
}

// ResetTraces clears all recorded spans (used after warmup).
func (c *Cluster) ResetTraces() { c.Collector.Reset() }

// Shards exposes the sparse shard services (nil for singular plans) —
// tests and the rebalancer introspect epochs and load summaries.
func (c *Cluster) Shards() []*core.SparseShard { return c.shards }

// Migrator builds the online-resharding driver for this deployment,
// addressing every sparse shard's primary server.
func (c *Cluster) Migrator() (*core.Migrator, error) {
	if !c.Plan.IsDistributed() {
		return nil, fmt.Errorf("cluster: singular deployments have nothing to reshard")
	}
	mg := &core.Migrator{Engine: c.Engine, Rec: c.MainRec, Shards: make(map[int]core.ShardEndpoint)}
	c.replicaMu.Lock()
	defer c.replicaMu.Unlock()
	// Online resharding commits table moves into one store per shard. A
	// replica replaced after a failure serves its own rebuilt store, so
	// a migration would update only one copy and the replicas would stop
	// answering identically — refuse, exactly as drmserve refuses
	// -rebalance-every with standalone hedge replicas.
	for si, reps := range c.replicas {
		for _, rep := range reps {
			if rep.store != c.shards[si] {
				return nil, fmt.Errorf("cluster: %s replica %d serves a store rebuilt from a peer; online resharding needs a homogeneous replica fleet", rep.store.ShardName, rep.idx)
			}
		}
	}
	for i := 0; i < c.Plan.NumShards; i++ {
		name := core.ServiceName(i + 1)
		addr, err := c.Registry.Lookup(name)
		if err != nil {
			return nil, err
		}
		caller, ok := c.ctrlClients[name]
		if !ok {
			caller, err = rpc.DialPool(addr, nil, 1)
			if err != nil {
				return nil, fmt.Errorf("cluster: dialing control plane for %s: %w", name, err)
			}
			c.ctrlClients[name] = caller
		}
		mg.Shards[i+1] = core.ShardEndpoint{Service: name, Addr: addr, Caller: caller}
	}
	return mg, nil
}

// dropCtrlClient invalidates the cached control-plane connection for a
// shard whose primary server changed (killed, revived, replaced): the
// next Migrator build re-dials the registry's current address. Caller
// holds replicaMu.
func (c *Cluster) dropCtrlClient(name string) {
	if cc, ok := c.ctrlClients[name]; ok {
		cc.Close()
		delete(c.ctrlClients, name)
	}
}

// refreshRegistry keeps a shard's registered (control-plane) address on
// a live server: when the current registration matches no live replica,
// the first live one is registered and the cached control client
// invalidated, so migration stays available through dead windows no
// matter which replica died. A fully dark shard keeps its stale
// registration. Caller holds replicaMu.
func (c *Cluster) refreshRegistry(shard int) {
	name := c.shards[shard].ShardName
	cur, err := c.Registry.Lookup(name)
	live := ""
	for _, p := range c.replicas[shard] {
		if p.srv == nil {
			continue
		}
		if err == nil && p.srv.Addr() == cur {
			return // already registered to a live server
		}
		if live == "" {
			live = p.srv.Addr()
		}
	}
	if live == "" {
		return
	}
	c.Registry.Register(name, live)
	c.dropCtrlClient(name)
}

// Rebalance runs one observe→plan→migrate→cutover pass against the
// shards' measured load, usable mid-replay: requests keep flowing while
// rows stream and the routing swap is atomic. The cluster's Plan field
// tracks the target so later passes (and introspection) see the current
// placement.
func (c *Cluster) Rebalance(opts sharding.RebalanceOptions) (*core.RebalanceReport, error) {
	c.rebalanceMu.Lock()
	defer c.rebalanceMu.Unlock()
	mg, err := c.Migrator()
	if err != nil {
		return nil, err
	}
	report, err := mg.Rebalance(opts)
	if err != nil {
		return nil, err
	}
	c.Plan = report.Plan.Target
	return report, nil
}

// TierStats snapshots every sparse shard's tiered-storage state (nil for
// singular plans) — resident cold/cache bytes and cache hit counters.
func (c *Cluster) TierStats() []core.TierStats {
	out := make([]core.TierStats, len(c.shards))
	for i, sh := range c.shards {
		out[i] = sh.TierSnapshot()
	}
	return out
}

// ResidentBytes sums the sparse shards' live storage footprints (cold
// tier plus hot-row caches) — the capacity a deployment provisions for.
func (c *Cluster) ResidentBytes() int64 {
	var n int64
	for _, sh := range c.shards {
		n += sh.Bytes()
	}
	return n
}

// MainStats snapshots the main server's backpressure gauges.
func (c *Cluster) MainStats() rpc.ServerStats {
	if c.mainServer == nil {
		return rpc.ServerStats{}
	}
	return c.mainServer.Stats()
}

// Close tears down the deployment; safe on partially built clusters.
// Order matters once a frontend is in play: stop admitting at the main
// server, drain the frontend's queue (its executions still need the
// sparse clients), then drop connections and sparse servers.
func (c *Cluster) Close() {
	if c.mainServer != nil {
		c.mainServer.Close()
	}
	if c.Frontend != nil {
		c.Frontend.Close()
	}
	for _, cl := range c.clients {
		cl.Close()
	}
	c.replicaMu.Lock()
	defer c.replicaMu.Unlock()
	for _, cl := range c.ctrlClients {
		cl.Close()
	}
	for _, cl := range c.pubClients {
		cl.Close()
	}
	for _, reps := range c.replicas {
		for _, rep := range reps {
			if rep.srv != nil {
				rep.srv.Close()
			}
			if rep.client != nil {
				rep.client.Close()
			}
		}
	}
	for _, sh := range c.rebuilt {
		sh.Close()
	}
	for _, sh := range c.shards {
		sh.Close()
	}
	// After the shards: mmap-backed tables are views into these mappings.
	for _, cl := range c.shardClosers {
		cl.Close()
	}
}
