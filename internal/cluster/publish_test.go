package cluster_test

import (
	"math"
	"os"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sharding"
	"repro/internal/trace"
	"repro/internal/workload"
)

// sourceRows reads logical rows out of the model's fp32 tables — the
// publisher's delta payloads are always fp32, whatever the shards'
// cold-tier encoding.
func sourceRows(m *model.Model, id int, rows []int32) []float32 {
	tab := m.Tables[id]
	out := make([]float32, 0, len(rows)*tab.Dim())
	buf := make([]float32, tab.Dim())
	for _, r := range rows {
		for i := range buf {
			buf[i] = 0
		}
		tab.AccumulateRow(buf, int(r))
		out = append(out, buf...)
	}
	return out
}

// oneTablePerShard picks one table held by each shard of the plan.
func oneTablePerShard(plan *sharding.Plan) []int {
	var ids []int
	for si := range plan.Shards {
		a := &plan.Shards[si]
		if len(a.Tables) > 0 {
			ids = append(ids, a.Tables[0])
		} else if len(a.Parts) > 0 {
			ids = append(ids, a.Parts[0].TableID)
		}
	}
	return ids
}

// TestPublishIdentityBitIdentical publishes a delta whose values equal
// the rows already serving (touching one table on every shard of a
// tiered int8 deployment) and requires byte-identical scores across the
// version cutover: per-row quantization must re-encode the delta to the
// exact bytes the boot-time encode produced.
func TestPublishIdentityBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := smallModel()
	m := model.Build(cfg)
	pooling := workload.EstimatePooling(workload.NewGenerator(cfg, 5), 50)
	plan, err := sharding.LoadBalanced(&cfg, 4, pooling)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cl, err := cluster.Boot(m, plan, cluster.Options{Seed: 11, Tier: tierFor(&cfg), Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	client, err := cl.DialMain()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	rep := serve.NewReplayer(client)

	stream := workload.NewGenerator(cfg, 23).GenerateBatch(12)
	want, res := rep.RunSerialScored(stream)
	if res.Failed() > 0 {
		t.Fatal(res.Errors[0])
	}

	const version = 3
	ds := &core.DeltaSet{Version: version}
	for _, id := range oneTablePerShard(cl.Plan) {
		rows := []int32{0, 1, int32(m.Tables[id].NumRows() - 1)}
		ds.Tables = append(ds.Tables, core.TableDelta{
			TableID: id, Rows: rows, Data: sourceRows(m, id, rows),
		})
	}
	report, err := cl.Publish(ds)
	if err != nil {
		t.Fatal(err)
	}
	if report.RowsSent == 0 || len(report.Events) == 0 {
		t.Fatalf("empty publish report: %v", report)
	}

	got, res := rep.RunSerialScored(stream)
	if res.Failed() > 0 {
		t.Fatal(res.Errors[0])
	}
	for i := range want {
		requireSameScores(t, want[i], got[i], "post-publish", i)
	}

	if v := cl.PublishedVersion(); v != version {
		t.Fatalf("published version %d, want %d", v, version)
	}
	for _, sh := range cl.Shards() {
		if v := sh.ModelVersion(); v != version {
			t.Fatalf("%s model version %d, want %d", sh.ShardName, v, version)
		}
	}
	events := cl.PublishTimeline()
	if len(events) != len(cl.Shards()) {
		t.Fatalf("%d timeline events, want one per shard (%d)", len(events), len(cl.Shards()))
	}
	for _, ev := range events {
		if ev.Version != version || ev.Epoch == 0 || ev.RowsSent == 0 {
			t.Fatalf("malformed event: %+v", ev)
		}
	}
	snap := reg.Snapshot()
	if lag := snap.Gauge("publish.lag"); lag != 0 {
		t.Fatalf("publish.lag = %d after full publish", lag)
	}
	if v := snap.Gauge("publish.version"); v != version {
		t.Fatalf("publish.version gauge = %d, want %d", v, version)
	}
	if v := snap.Gauge("publish.min_model_version"); v != version {
		t.Fatalf("publish.min_model_version = %d, want %d", v, version)
	}
}

// TestPublishMutationMatchesDirect publishes genuinely new values —
// fresh rows in every table plus a dense-weight swap — and requires the
// distributed deployment to score like a direct (no-RPC) engine over a
// model holding the same updated parameters.
func TestPublishMutationMatchesDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := smallModel()
	m := model.Build(cfg)
	plan, err := sharding.CapacityBalanced(&cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.Boot(m, plan, cluster.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// The ground-truth model: an identical build whose tables and dense
	// weights are mutated in place exactly as the delta set prescribes.
	fresh := model.Build(cfg)
	ds := &core.DeltaSet{Version: 1}
	for id, tab := range fresh.Tables {
		dense := tab.(*embedding.Dense)
		rows := []int32{0, 3, int32(dense.NumRows() / 2)}
		data := make([]float32, 0, len(rows)*dense.Dim())
		for ri, r := range rows {
			for j := 0; j < dense.Dim(); j++ {
				v := float32(id)*0.125 + float32(ri)*0.03 - float32(j)*0.001
				dense.Data[int(r)*dense.Dim()+j] = v
				data = append(data, v)
			}
		}
		ds.Tables = append(ds.Tables, core.TableDelta{TableID: id, Rows: rows, Data: data})
	}
	fresh.NetParams[0].Proj.W.Data[0] += 0.5
	ds.Dense = fresh.NetParams

	report, err := cl.Publish(ds)
	if err != nil {
		t.Fatal(err)
	}
	if !report.DenseSwapped {
		t.Fatal("dense swap did not happen")
	}

	reqs := workload.NewGenerator(cfg, 42).GenerateBatch(4)
	want := execDirect(t, fresh, reqs)
	for i, req := range reqs {
		got, err := cl.Engine.Execute(trace.Context{TraceID: uint64(500 + i)}, core.FromWorkload(req))
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if diff := math.Abs(float64(got[j] - want[i][j])); diff > 1e-5 {
				t.Fatalf("req %d item %d: distributed %v vs direct-on-fresh %v", i, j, got[j], want[i][j])
			}
		}
	}
}

// exportShardDir writes every shard's v2 file for the plan into dir.
func exportShardDir(t *testing.T, m *model.Model, plan *sharding.Plan, tier *sharding.TierPlan, dir string) {
	t.Helper()
	for s := 1; s <= plan.NumShards; s++ {
		f, err := os.Create(core.ShardFilePath(dir, m.Config.Name, s))
		if err != nil {
			t.Fatal(err)
		}
		if err := core.ExportShardV2(m, plan, s, f, tier); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBootFromShardDirMatchesMaterialized boots one deployment from the
// in-memory model and another from exported v2 shard files (mmap-backed
// where the platform allows) and requires byte-identical scores — then
// publishes a delta into the file-backed deployment to prove updates
// stage on heap clones and never write through the mapping.
func TestBootFromShardDirMatchesMaterialized(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := smallModel()
	m := model.Build(cfg)
	plan, err := sharding.NSBP(&cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	tier := tierFor(&cfg)
	dir := t.TempDir()
	exportShardDir(t, m, plan, tier.Plan, dir)

	boot := func(shardDir string) (*cluster.Cluster, *serve.Replayer) {
		cl, err := cluster.Boot(m, plan, cluster.Options{Seed: 11, Tier: tier, ShardDir: shardDir})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Close)
		client, err := cl.DialMain()
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { client.Close() })
		return cl, serve.NewReplayer(client)
	}
	_, repMem := boot("")
	clFile, repFile := boot(dir)

	stream := workload.NewGenerator(cfg, 23).GenerateBatch(12)
	want, res := repMem.RunSerialScored(stream)
	if res.Failed() > 0 {
		t.Fatal(res.Errors[0])
	}
	got, res := repFile.RunSerialScored(stream)
	if res.Failed() > 0 {
		t.Fatal(res.Errors[0])
	}
	for i := range want {
		requireSameScores(t, want[i], got[i], "file-boot", i)
	}

	// Publish identity rows into the file-backed deployment: staging
	// clones to heap, so serving stays byte-identical and the mapped
	// file's bytes are untouched.
	before, err := os.ReadFile(core.ShardFilePath(dir, m.Config.Name, 1))
	if err != nil {
		t.Fatal(err)
	}
	ds := &core.DeltaSet{Version: 1}
	for _, id := range oneTablePerShard(clFile.Plan) {
		rows := []int32{0, 2}
		ds.Tables = append(ds.Tables, core.TableDelta{
			TableID: id, Rows: rows, Data: sourceRows(m, id, rows),
		})
	}
	if _, err := clFile.Publish(ds); err != nil {
		t.Fatal(err)
	}
	got, res = repFile.RunSerialScored(stream)
	if res.Failed() > 0 {
		t.Fatal(res.Errors[0])
	}
	for i := range want {
		requireSameScores(t, want[i], got[i], "file-boot post-publish", i)
	}
	after, err := os.ReadFile(core.ShardFilePath(dir, m.Config.Name, 1))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("publish mutated the on-disk shard file")
	}
}
