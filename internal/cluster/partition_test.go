package cluster_test

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sharding"
	"repro/internal/trace"
	"repro/internal/workload"
)

// tinyDRM3 shrinks DRM3 while keeping its defining structure: one
// dominating table (row-partitioned under NSBP) plus a tail of small
// tables, single net, per-request user feature on table 0.
func tinyDRM3() model.Config {
	cfg := model.DRM3()
	cfg.Tables[0].Rows = 4096 // dominating table, partitioned under NSBP
	for i := 1; i < len(cfg.Tables); i++ {
		cfg.Tables[i].Rows = 48
		cfg.Tables[i].PoolingFactor = 1.5
	}
	cfg.MeanItems = 5
	cfg.DefaultBatch = 3
	return cfg
}

// TestPartitionedTablesMatchSingular verifies the full distributed path
// for row-partitioned tables: NSBP places the dominating table's
// partitions on dedicated shards, the RPC ops split and localize indices
// by modulus, collectors sum partial pools — and scores must equal the
// singular model's.
func TestPartitionedTablesMatchSingular(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := tinyDRM3()
	m := model.Build(cfg)
	reqs := workload.NewGenerator(cfg, 77).GenerateBatch(4)

	// Ground truth: singular execution.
	rec := trace.NewRecorder("main", 1<<16)
	eng, err := core.NewEngine(m, sharding.Singular(&cfg), core.EngineConfig{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]float32
	for i, req := range reqs {
		scores, err := eng.Execute(trace.Context{TraceID: uint64(i + 1)}, core.FromWorkload(req))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, scores)
	}

	for _, n := range []int{4, 8} {
		plan, err := sharding.NSBP(&cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		// Sanity: the plan actually partitions the dominating table (the
		// shrunken test config's tail may take one extra bin, so allow
		// n−1 or n−2 partitions).
		parts := 0
		for i := range plan.Shards {
			parts += len(plan.Shards[i].Parts)
		}
		if parts < n-2 || parts < 2 {
			t.Fatalf("NSBP-%d has %d partition shards, want ≥ %d", n, parts, n-2)
		}

		cl, err := cluster.Boot(m, plan, cluster.Options{Seed: 3, ClockSkew: true, SpanCapacity: 1 << 16})
		if err != nil {
			t.Fatal(err)
		}
		for i, req := range reqs {
			got, err := cl.Engine.Execute(trace.Context{TraceID: uint64(100 + i)}, core.FromWorkload(req))
			if err != nil {
				cl.Close()
				t.Fatal(err)
			}
			for j := range got {
				if diff := math.Abs(float64(got[j] - want[i][j])); diff > 1e-5 {
					cl.Close()
					t.Fatalf("NSBP-%d req %d item %d: %v vs singular %v", n, i, j, got[j], want[i][j])
				}
			}
		}

		// The paper's access property: the per-request user feature hits
		// exactly one partition, so only two shards serve any request.
		spans := cl.Collector.Gather()
		bs := trace.Analyze(spans, "main")
		for _, b := range bs {
			// Tail tables may span two bins in the shrunken config, so a
			// request touches at most 3 shards (1 partition + ≤2 tail
			// bins) per batch, over up to 3 batches.
			maxCalls := 3 * 3
			if b.RPCCalls > maxCalls {
				t.Errorf("NSBP-%d trace %d: %d RPC calls, want ≤ %d",
					n, b.TraceID, b.RPCCalls, maxCalls)
			}
		}
		cl.Close()
	}
}

// TestPartitionedPerRequestFeatureRouting pins the single-partition-hit
// property at the bag level: all of a request's lookups for the
// dominating table route to exactly one modulus partition.
func TestPartitionedPerRequestFeatureRouting(t *testing.T) {
	cfg := tinyDRM3()
	gen := workload.NewGenerator(cfg, 5)
	for i := 0; i < 20; i++ {
		req := gen.Next()
		bags := req.Bags[0]
		const parts = 7
		seen := map[int32]bool{}
		for _, bag := range bags {
			for _, idx := range bag.Indices {
				seen[idx%parts] = true
			}
		}
		if len(seen) != 1 {
			t.Fatalf("request %d: user feature hits %d partitions, want 1", req.ID, len(seen))
		}
	}
}
