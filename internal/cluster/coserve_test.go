package cluster_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sharding"
	"repro/internal/workload"
)

func bootCoserveFleet(t *testing.T, m *model.Model, cfg model.Config, reg *obs.Registry) *cluster.Fleet {
	t.Helper()
	planA, err := sharding.CapacityBalanced(&cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	planB, err := sharding.CapacityBalanced(&cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := cluster.BootFleet([]cluster.TenantSpec{
		{Name: "alpha", Model: m, Plan: planA, InitialReplicas: 2, SlotReplicas: 3},
		{Name: "beta", Model: m, Plan: planB, InitialReplicas: 1, SlotReplicas: 3},
	}, cluster.FleetOptions{
		Capacity:    10, // headroom so forced grows never pair-shrink
		Seed:        23,
		HedgeDelay:  25 * time.Millisecond,
		HealthFails: 2,
		HealthProbe: 60 * time.Millisecond,
		Obs:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fl.Close)
	return fl
}

// TestCoServeChaosIdentity is the co-serving race/identity sweep: two
// tenants take scored traffic through the shared front door while the
// fleet live-grows and live-shrinks their replica sets (snapshot
// rebuilds and drain-reclaims under fire), and every response on both
// tenants must stay byte-identical to a dedicated static deployment.
// Run under -race in CI it doubles as the data-race sweep over the
// scheduler's slot swaps, gate re-pricing, and hedged calls.
func TestCoServeChaosIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := smallModel()
	m := model.Build(cfg)
	streamA := workload.NewGenerator(cfg, 41).GenerateBatch(24)
	streamB := workload.NewGenerator(cfg, 43).GenerateBatch(24)

	// Static control: one dedicated replicated cluster, no scaling.
	control, controlRep := bootFault(t, m, cfg)
	defer control.Close()
	wantA, res := controlRep.RunSerialScored(streamA)
	if res.Failed() > 0 {
		t.Fatal(res.Errors[0])
	}
	wantB, res := controlRep.RunSerialScored(streamB)
	if res.Failed() > 0 {
		t.Fatal(res.Errors[0])
	}

	reg := obs.NewRegistry()
	fl := bootCoserveFleet(t, m, cfg, reg)

	drive := func(tenant string, stream []*workload.Request, want [][]float32, rounds int) func() error {
		client, err := fl.DialFront()
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { client.Close() })
		rep := serve.NewReplayerFor(client, tenant)
		return func() error {
			for round := 0; round < rounds; round++ {
				for i, req := range stream {
					got, _, err := rep.Send(req)
					if err != nil {
						return err
					}
					requireSameScores(t, want[i], got, "coserve/"+tenant, i)
				}
			}
			return nil
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); errs <- drive("alpha", streamA, wantA, 2)() }()
	go func() { defer wg.Done(); errs <- drive("beta", streamB, wantB, 2)() }()

	// Scale cycle under fire: grow beta (snapshot rebuild), shrink
	// alpha (drain + reclaim), grow alpha back.
	time.Sleep(30 * time.Millisecond)
	if err := fl.ForceScale("beta", 2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if err := fl.ForceScale("alpha", 1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if err := fl.ForceScale("alpha", 2); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// The cycle really moved capacity: three timeline events, grows
	// booking streamed snapshot bytes.
	tl := fl.Timeline()
	if len(tl) != 3 {
		t.Fatalf("timeline has %d events, want 3: %+v", len(tl), tl)
	}
	grows := 0
	for _, ev := range tl {
		if ev.To > ev.From {
			grows++
			if ev.RebuildBytes == 0 {
				t.Errorf("grow %s %d->%d streamed no bytes", ev.Model, ev.From, ev.To)
			}
		}
	}
	if grows != 2 {
		t.Errorf("timeline has %d grows, want 2: %+v", grows, tl)
	}

	// Entitlements track the final allocation (alpha back to 2 steps x 2
	// shards, beta at 2 x 2).
	if u := fl.Multi.Units("alpha"); u != 4 {
		t.Errorf("alpha units = %v, want 4", u)
	}
	if u := fl.Multi.Units("beta"); u != 4 {
		t.Errorf("beta units = %v, want 4", u)
	}
	if got := fl.TenantCluster("beta").ActiveReplicas(); got != 2 {
		t.Errorf("beta active replicas = %d, want 2", got)
	}

	// Per-model obs namespaces: both tenants' serving stages and the
	// scheduler's gauges land under model=<name> labels in one shared
	// snapshot; the fleet-wide move counter stays unlabeled.
	snap := reg.Snapshot()
	for _, name := range []string{
		"coserve.active_replicas{model=alpha}",
		"coserve.units{model=beta}",
		"frontend.completed{model=alpha}",
		"frontend.completed{model=beta}",
	} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("snapshot is missing %s", name)
		}
	}
	if snap.Gauges["frontend.completed{model=alpha}"] != int64(2*len(streamA)) {
		t.Errorf("alpha completed = %d, want %d", snap.Gauges["frontend.completed{model=alpha}"], 2*len(streamA))
	}
	if snap.Counters["coserve.moves"] != 3 {
		t.Errorf("coserve.moves = %d, want 3", snap.Counters["coserve.moves"])
	}
}

// TestFleetElasticStepReallocates drives the planner end to end without
// forced moves: a saturated tenant with free fleet headroom must be
// granted a replica step by Step(), and an idle tenant must eventually
// donate its excess back.
func TestFleetElasticStepReallocates(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := smallModel()
	m := model.Build(cfg)
	reg := obs.NewRegistry()
	fl := bootCoserveFleet(t, m, cfg, reg)

	// Synthesize pressure: flood beta's queue via open-loop traffic so
	// its queue fraction crosses the scale-up threshold during the
	// window, then Step.
	client, err := fl.DialFront()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	rep := serve.NewReplayerFor(client, "beta")
	stream := workload.NewGenerator(cfg, 5).GenerateBatch(160)

	done := make(chan struct{})
	go func() {
		defer close(done)
		rep.RunOpenLoop(stream, 4000)
	}()
	grown := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		fl.Step()
		if fl.TenantCluster("beta").ActiveReplicas() > 1 {
			grown = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	<-done
	if !grown {
		t.Fatalf("elastic step never grew the hot tenant: timeline %+v", fl.Timeline())
	}

	// With traffic gone, repeated passes (cooldowns expiring in between)
	// must reclaim beta back toward its floor.
	deadline = time.Now().Add(5 * time.Second)
	for fl.TenantCluster("beta").ActiveReplicas() > 1 {
		if time.Now().After(deadline) {
			t.Fatalf("idle tenant never reclaimed: timeline %+v", fl.Timeline())
		}
		time.Sleep(50 * time.Millisecond)
		fl.Step()
	}
}
