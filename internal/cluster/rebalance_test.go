package cluster_test

import (
	"math"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/sharding"
	"repro/internal/workload"
)

// bootRebalanceable boots a 4-shard load-balanced deployment of the
// small model with its replayer client.
func bootRebalanceable(t *testing.T) (*cluster.Cluster, *serve.Replayer, model.Config) {
	t.Helper()
	cfg := smallModel()
	m := model.Build(cfg)
	pooling := workload.EstimatePooling(workload.NewGenerator(cfg, 5), 50)
	plan, err := sharding.LoadBalanced(&cfg, 4, pooling)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.Boot(m, plan, cluster.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	client, err := cl.DialMain()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return cl, serve.NewReplayer(client), cfg
}

// TestClusterRebalanceLive drives traffic, rebalances against the
// measured load with a real skew, and checks (a) the plan actually
// changed, (b) scores match the pre-rebalance deployment bit for bit,
// and (c) requests racing the migration never fail.
func TestClusterRebalanceLive(t *testing.T) {
	cl, rep, cfg := bootRebalanceable(t)

	// Skew the stream onto shard 1's tables so the rebalancer has
	// something real to undo.
	skew := make(map[int]float64)
	for _, id := range cl.Plan.Shards[0].Tables {
		skew[id] = 6
	}
	gen := workload.NewGenerator(cfg, 23)
	reqs := workload.ApplySkew(gen.GenerateBatch(30), skew)

	warm := rep.RunSerial(reqs[:10])
	if warm.Failed() > 0 {
		t.Fatal(warm.Errors[0])
	}
	before, res := rep.RunSerialScored(reqs)
	if res.Failed() > 0 {
		t.Fatal(res.Errors[0])
	}

	// Rebalance while a replay is in flight: the stream must not observe
	// the cutover.
	var wg sync.WaitGroup
	wg.Add(1)
	var report *core.RebalanceReport
	var rbErr error
	go func() {
		defer wg.Done()
		report, rbErr = cl.Rebalance(sharding.RebalanceOptions{MoveBudget: 6})
	}()
	mid, res := rep.RunSerialScored(reqs)
	wg.Wait()
	if rbErr != nil {
		t.Fatal(rbErr)
	}
	if res.Failed() > 0 {
		t.Fatalf("requests racing the migration failed: %v", res.Errors[0])
	}
	if !report.Moved() {
		t.Fatalf("rebalance against a 6x skew moved nothing: %v", report)
	}
	if err := cl.Plan.Validate(&cfg); err != nil {
		t.Fatal(err)
	}
	if samePlacement(report.Plan.Current, cl.Plan) {
		t.Fatal("cluster plan did not track the migration target")
	}

	// And afterwards, the same stream on the new placement.
	after, res := rep.RunSerialScored(reqs)
	if res.Failed() > 0 {
		t.Fatal(res.Errors[0])
	}
	for i := range before {
		requireSameScores(t, before[i], mid[i], "mid-migration", i)
		requireSameScores(t, before[i], after[i], "post-migration", i)
	}
}

// TestClusterRebalanceBudgetZero pins the knob's off position end to
// end: a zero budget plans and moves nothing, and the plan is untouched.
func TestClusterRebalanceBudgetZero(t *testing.T) {
	cl, rep, cfg := bootRebalanceable(t)
	gen := workload.NewGenerator(cfg, 29)
	if res := rep.RunSerial(gen.GenerateBatch(10)); res.Failed() > 0 {
		t.Fatal(res.Errors[0])
	}
	planBefore := cl.Plan
	epochsBefore := make([]uint64, 0, len(cl.Shards()))
	for _, sh := range cl.Shards() {
		epochsBefore = append(epochsBefore, sh.Epoch())
	}
	report, err := cl.Rebalance(sharding.RebalanceOptions{MoveBudget: 0})
	if err != nil {
		t.Fatal(err)
	}
	if report.Moved() || report.BytesMoved != 0 {
		t.Fatalf("budget 0 moved something: %v", report)
	}
	if cl.Plan != planBefore {
		t.Fatal("budget 0 replaced the cluster plan")
	}
	for i, sh := range cl.Shards() {
		if sh.Epoch() != epochsBefore[i] {
			t.Fatalf("%s epoch advanced on a no-op rebalance", sh.ShardName)
		}
	}
}

// TestClusterRebalanceEpochsAdvance checks the cutover bumps epochs on
// both ends of every move.
func TestClusterRebalanceEpochsAdvance(t *testing.T) {
	cl, rep, cfg := bootRebalanceable(t)
	skew := make(map[int]float64)
	for _, id := range cl.Plan.Shards[0].Tables {
		skew[id] = 6
	}
	gen := workload.NewGenerator(cfg, 31)
	reqs := workload.ApplySkew(gen.GenerateBatch(20), skew)
	if res := rep.RunSerial(reqs); res.Failed() > 0 {
		t.Fatal(res.Errors[0])
	}
	epochsBefore := make([]uint64, 0, len(cl.Shards()))
	for _, sh := range cl.Shards() {
		epochsBefore = append(epochsBefore, sh.Epoch())
	}
	report, err := cl.Rebalance(sharding.RebalanceOptions{MoveBudget: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Moved() {
		t.Fatal("no moves planned")
	}
	touched := make(map[int]bool)
	for _, mv := range report.Plan.Moves {
		touched[mv.From] = true
		touched[mv.To] = true
	}
	for i, sh := range cl.Shards() {
		if touched[i+1] && sh.Epoch() == epochsBefore[i] {
			t.Errorf("%s took part in a move but its epoch never advanced", sh.ShardName)
		}
	}
}

func samePlacement(a, b *sharding.Plan) bool {
	if a == b {
		return true
	}
	if len(a.Shards) != len(b.Shards) {
		return false
	}
	for i := range a.Shards {
		if len(a.Shards[i].Tables) != len(b.Shards[i].Tables) || len(a.Shards[i].Parts) != len(b.Shards[i].Parts) {
			return false
		}
		for j := range a.Shards[i].Tables {
			if a.Shards[i].Tables[j] != b.Shards[i].Tables[j] {
				return false
			}
		}
	}
	return true
}

func requireSameScores(t *testing.T, want, got []float32, phase string, req int) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s request %d returned %d scores, want %d", phase, req, len(got), len(want))
	}
	for i := range want {
		if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
			t.Fatalf("%s request %d score %d = %x, want %x (not byte-identical)",
				phase, req, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
		}
	}
}
