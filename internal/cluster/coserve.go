package cluster

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/frontend"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/replication"
	"repro/internal/rpc"
	"repro/internal/sharding"
	"repro/internal/trace"
)

// Multi-model co-serving: one shared fleet hosts several ranking models
// (DRM1/DRM2/DRM3 and tenant copies thereof), each with its own sparse
// deployment, SLA budget, and capacity entitlement, behind a single
// front door that routes "rank@<model>". An elastic scheduler watches
// per-model load (queue occupancy, executor busy time, sheds, replica
// health) and moves replica capacity between models: scale-up activates
// a parked slot by streaming the model's tables from a healthy peer
// (SetActiveReplicas — the PR-5 snapshot machinery), scale-down drains
// and returns the servers to the shared pool. The drain gate in
// frontend.Multi turns the allocation into an enforced throughput
// entitlement, so a consolidated fleet behaves like — and can be
// compared at equal hardware against — dedicated per-model fleets.

// TenantSpec describes one co-served model.
type TenantSpec struct {
	// Name keys the tenant everywhere: the rank@<Name> route, the
	// model=<Name> obs label, move timelines.
	Name string
	// Model and Plan are the tenant's built model and sharding plan.
	Model *model.Model
	Plan  *sharding.Plan
	// Frontend carries the tenant's own SLA budget, queue bound, and
	// batching config (Obs and the drain-gate wiring are filled in by
	// the fleet).
	Frontend frontend.Config
	// InitialReplicas is the tenant's serving replica count at boot
	// (default 1). SlotReplicas is the total slots booted, serving plus
	// parked headroom (default: the fleet-wide max initial+1, floored at
	// InitialReplicas). Min/MaxReplicas bound the elastic planner
	// (defaults 1 and SlotReplicas).
	InitialReplicas, SlotReplicas, MinReplicas, MaxReplicas int
}

// FleetOptions tunes a co-serving fleet boot.
type FleetOptions struct {
	// Capacity is the fleet's total hardware in units (sparse servers).
	// 0 sizes it to exactly the sum of initial allocations — no free
	// pool, so growth must be paired with a donor's shrink.
	Capacity float64
	// Elastic tunes the planner; Interval is the scheduler tick (0
	// disables the background loop — Step and ForceScale still work).
	Elastic  ElasticConfig
	Interval time.Duration
	// Burst bounds each tenant's banked drain-gate credit (0 = default).
	Burst time.Duration
	// Seed, HedgeDelay, HealthFails, HealthProbe, Tier pass through to
	// every tenant cluster.
	Seed        int64
	HedgeDelay  time.Duration
	HealthFails int
	HealthProbe time.Duration
	// FrontMaxInFlight bounds the shared front door's concurrent
	// dispatches (0 = unbounded).
	FrontMaxInFlight int
	// Listen is the front door's listen address (default 127.0.0.1:0).
	Listen string
	// Obs receives the fleet's metrics. Every tenant's serving stages
	// register under a model=<name> label (engine.*{model=X},
	// frontend.*{model=X}, coserve.*{model=X}); fleet-wide counters stay
	// unlabeled.
	Obs *obs.Registry
}

// MoveEvent is one executed capacity move — the reallocation timeline's
// entry.
type MoveEvent struct {
	At       time.Time
	Model    string
	From, To int
	Reason   string
	// RebuildBytes is how many table bytes the activation streamed
	// (0 for shrinks); Took is the move's wall time, dominated by the
	// snapshot rebuild on grows and the drain grace on shrinks.
	RebuildBytes int64
	Took         time.Duration
}

// fleetTenant is one hosted model's serving stack.
type fleetTenant struct {
	spec   TenantSpec
	cl     *Cluster
	f      *frontend.Frontend
	weight float64 // fleet units per replica step (= sparse shard count)
}

// Fleet is a running co-serving deployment.
type Fleet struct {
	// Multi is the shared multi-tenant frontend (per-model queues behind
	// the weighted drain gate).
	Multi *frontend.Multi
	// Obs is the fleet's root metrics registry (never nil).
	Obs *obs.Registry

	tenants  map[string]*fleetTenant
	names    []string
	capacity float64
	frontSrv *rpc.Server
	frontRec *trace.Recorder
	opts     FleetOptions
	moves    *obs.Counter

	// mu serializes planner passes, manual scales, and Close against
	// each other; the per-tenant signal cursors live under it.
	mu        sync.Mutex
	timeline  []MoveEvent
	cooldown  map[string]int
	lastSheds map[string]uint64
	lastBusy  map[string]uint64
	lastTick  time.Time
	closed    bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// BootFleet boots every tenant's cluster, fronts them with a shared
// multi-tenant frontend and one front-door RPC server, and (with
// Interval > 0) starts the elastic scheduler loop. Call Close to tear
// down.
func BootFleet(specs []TenantSpec, opts FleetOptions) (*Fleet, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: a fleet needs at least one tenant")
	}
	reg := opts.Obs
	if reg == nil {
		reg = obs.Discard()
	}

	// Default slot headroom: every tenant can grow at least one step
	// past the largest initial allocation in the fleet.
	maxInitial := 1
	for i := range specs {
		if specs[i].InitialReplicas > maxInitial {
			maxInitial = specs[i].InitialReplicas
		}
	}

	fl := &Fleet{
		Multi:     nil, // set below (needs capacity)
		Obs:       reg,
		tenants:   make(map[string]*fleetTenant, len(specs)),
		opts:      opts,
		moves:     reg.Counter("coserve.moves"),
		cooldown:  make(map[string]int),
		lastSheds: make(map[string]uint64),
		lastBusy:  make(map[string]uint64),
		stop:      make(chan struct{}),
	}
	ok := false
	defer func() {
		if !ok {
			fl.Close()
		}
	}()

	var capacity float64
	type boot struct {
		spec   TenantSpec
		weight float64
	}
	boots := make([]boot, 0, len(specs))
	for _, spec := range specs {
		if spec.Name == "" || spec.Model == nil || spec.Plan == nil {
			return nil, fmt.Errorf("cluster: tenant spec needs Name, Model, and Plan")
		}
		if _, dup := fl.tenants[spec.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate tenant %q", spec.Name)
		}
		fl.tenants[spec.Name] = nil // reserve for dup detection
		if spec.InitialReplicas < 1 {
			spec.InitialReplicas = 1
		}
		weight := 1.0
		if spec.Plan.IsDistributed() {
			weight = float64(spec.Plan.NumShards)
			if spec.SlotReplicas < 1 {
				spec.SlotReplicas = maxInitial + 1
			}
			if spec.SlotReplicas < spec.InitialReplicas {
				spec.SlotReplicas = spec.InitialReplicas
			}
		} else {
			// A singular tenant has no sparse servers to reallocate: it
			// holds one frozen unit of frontend entitlement.
			spec.SlotReplicas = 1
			spec.InitialReplicas = 1
		}
		if spec.MinReplicas < 1 {
			spec.MinReplicas = 1
		}
		if spec.MaxReplicas <= 0 || spec.MaxReplicas > spec.SlotReplicas {
			spec.MaxReplicas = spec.SlotReplicas
		}
		capacity += float64(spec.InitialReplicas) * weight
		boots = append(boots, boot{spec, weight})
	}
	if opts.Capacity > 0 {
		capacity = opts.Capacity
	}
	fl.capacity = capacity
	fl.Multi = frontend.NewMulti(capacity, opts.Burst)

	for i, b := range boots {
		spec, weight := b.spec, b.weight
		labeled := reg.Labeled("model=" + spec.Name)
		cl, err := Boot(spec.Model, spec.Plan, Options{
			Seed:           opts.Seed + int64(i)*65537,
			SparseReplicas: spec.SlotReplicas,
			ActiveReplicas: spec.InitialReplicas,
			HedgeDelay:     opts.HedgeDelay,
			HealthFails:    opts.HealthFails,
			HealthProbe:    opts.HealthProbe,
			Obs:            labeled,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: booting tenant %s: %w", spec.Name, err)
		}
		fcfg := spec.Frontend
		fcfg.Obs = labeled
		f, err := fl.Multi.Add(spec.Name, cl.Engine, fcfg, float64(spec.InitialReplicas)*weight)
		if err != nil {
			cl.Close()
			return nil, err
		}
		t := &fleetTenant{spec: spec, cl: cl, f: f, weight: weight}
		fl.tenants[spec.Name] = t
		fl.names = append(fl.names, spec.Name)
		labeled.RegisterProbe("coserve.active_replicas", func() int64 {
			return int64(t.cl.ActiveReplicas())
		})
		labeled.RegisterProbe("coserve.units", func() int64 {
			return int64(fl.Multi.Units(t.spec.Name))
		})
	}

	listen := opts.Listen
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	fl.frontRec = trace.NewRecorder("front", 1<<16)
	srv, err := rpc.NewServer(listen, &frontend.MultiService{M: fl.Multi, Rec: fl.frontRec}, rpc.ServerConfig{
		Recorder:        fl.frontRec,
		BoilerplateCost: platform.BaseBoilerplate,
		MaxInFlight:     opts.FrontMaxInFlight,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: starting fleet front door: %w", err)
	}
	fl.frontSrv = srv

	if opts.Interval > 0 {
		fl.wg.Add(1)
		go fl.run(opts.Interval)
	}
	fl.lastTick = time.Now()
	ok = true
	return fl, nil
}

// Addr is the fleet front door's serving address (route with
// core.RankMethodFor(model)).
func (fl *Fleet) Addr() string { return fl.frontSrv.Addr() }

// DialFront connects a client to the fleet front door.
func (fl *Fleet) DialFront() (*rpc.Client, error) { return rpc.Dial(fl.Addr(), nil) }

// Names lists the hosted models in boot order.
func (fl *Fleet) Names() []string { return append([]string(nil), fl.names...) }

// TenantCluster exposes model name's backing cluster (nil if unknown).
func (fl *Fleet) TenantCluster(name string) *Cluster {
	if t := fl.tenants[name]; t != nil {
		return t.cl
	}
	return nil
}

// Timeline returns a copy of the executed capacity moves so far.
func (fl *Fleet) Timeline() []MoveEvent {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	return append([]MoveEvent(nil), fl.timeline...)
}

// run is the elastic scheduler loop.
func (fl *Fleet) run(interval time.Duration) {
	defer fl.wg.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-fl.stop:
			return
		case <-tick.C:
			fl.Step()
		}
	}
}

// Step runs one observe→plan→apply pass and returns the moves executed.
// The background loop calls it every Interval; tests and experiments
// may drive it manually.
func (fl *Fleet) Step() []Move {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.closed {
		return nil
	}
	now := time.Now()
	window := now.Sub(fl.lastTick)
	fl.lastTick = now
	if window <= 0 {
		window = time.Nanosecond
	}

	loads := make([]TenantLoad, 0, len(fl.names))
	allocated := 0.0
	for _, name := range fl.names {
		t := fl.tenants[name]
		active := 1
		if t.spec.Plan.IsDistributed() {
			active = t.cl.ActiveReplicas()
		}
		allocated += float64(active) * t.weight
		st := t.f.Stats()
		sheds, busy := st.Sheds(), st.ExecBusyNs
		shedDelta := sheds - fl.lastSheds[name]
		busyDelta := busy - fl.lastBusy[name]
		fl.lastSheds[name], fl.lastBusy[name] = sheds, busy
		unhealthy := 0
		for _, snap := range t.cl.HealthSnapshots() {
			e := 0
			for idx, r := range snap.Replicas {
				if idx < active && r.State == replication.ReplicaEjected {
					e++
				}
			}
			if e > unhealthy {
				unhealthy = e
			}
		}
		cd := fl.cooldown[name]
		if cd > 0 {
			fl.cooldown[name] = cd - 1
		}
		min, max := t.spec.MinReplicas, t.spec.MaxReplicas
		if !t.spec.Plan.IsDistributed() {
			min, max = active, active // frozen: nothing to reallocate
		}
		loads = append(loads, TenantLoad{
			Name:       name,
			Active:     active,
			Min:        min,
			Max:        max,
			UnitWeight: t.weight,
			QueueFrac:  float64(t.f.QueueDepth()) / float64(t.f.QueueCap()),
			BusyFrac:   float64(busyDelta) / float64(window),
			ShedDelta:  shedDelta,
			Unhealthy:  unhealthy,
			Cooldown:   cd,
		})
	}

	moves := PlanElastic(loads, fl.capacity-allocated, fl.opts.Elastic)
	// Shrinks first: a paired reallocation must free the donor's servers
	// before the claimant's rebuild occupies them (PlanElastic already
	// orders each claim's shrinks before its grow; this is belt and
	// braces for the free pool accounting).
	executed := moves[:0]
	for _, mv := range moves {
		if err := fl.applyLocked(mv); err != nil {
			// A failed move (e.g. no healthy rebuild peer appeared by
			// apply time) is dropped; the next pass replans from fresh
			// signals.
			continue
		}
		executed = append(executed, mv)
	}
	return executed
}

// ForceScale manually moves model name to n serving replicas through
// the same apply path the planner uses — the CI smoke's forced
// scale-up, and an operator override.
func (fl *Fleet) ForceScale(name string, n int) error {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.closed {
		return fmt.Errorf("cluster: fleet is closed")
	}
	t := fl.tenants[name]
	if t == nil {
		return fmt.Errorf("cluster: unknown tenant %q", name)
	}
	from := t.cl.ActiveReplicas()
	if n == from {
		return nil
	}
	return fl.applyLocked(Move{Model: name, From: from, To: n, Reason: "forced"})
}

// applyLocked executes one move: resize the replica set, re-price the
// tenant's drain-gate entitlement, book the timeline entry. Caller
// holds fl.mu.
func (fl *Fleet) applyLocked(mv Move) error {
	t := fl.tenants[mv.Model]
	if t == nil {
		return fmt.Errorf("cluster: unknown tenant %q", mv.Model)
	}
	start := time.Now()
	stats, err := t.cl.SetActiveReplicas(mv.To)
	if err != nil {
		return err
	}
	fl.Multi.SetUnits(mv.Model, float64(mv.To)*t.weight)
	fl.cooldown[mv.Model] = fl.opts.Elastic.withDefaults().Cooldown
	var bytes int64
	for _, st := range stats {
		bytes += st.Bytes
	}
	fl.timeline = append(fl.timeline, MoveEvent{
		At: start, Model: mv.Model, From: mv.From, To: mv.To,
		Reason: mv.Reason, RebuildBytes: bytes, Took: time.Since(start),
	})
	fl.moves.Inc()
	return nil
}

// Close stops the scheduler, closes the front door (draining in-flight
// requests), then the shared frontend, then every tenant cluster.
func (fl *Fleet) Close() {
	fl.mu.Lock()
	if fl.closed {
		fl.mu.Unlock()
		return
	}
	fl.closed = true
	fl.mu.Unlock()
	close(fl.stop)
	fl.wg.Wait()
	if fl.frontSrv != nil {
		fl.frontSrv.Close()
	}
	if fl.Multi != nil {
		fl.Multi.Close()
	}
	for _, t := range fl.tenants {
		if t != nil && t.cl != nil {
			t.cl.Close()
		}
	}
}
