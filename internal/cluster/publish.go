package cluster

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rpc"
)

// Publisher builds the model-freshness driver for this deployment.
// Unlike the Migrator, a heterogeneous replica fleet is welcome — the
// point of a publish is to make every distinct table store fresh — so
// endpoints cover one live server per distinct store of every shard
// (replicas sharing a store receive the delta through it; a replica
// rebuilt from a peer after failure gets its own stream). Connections
// are dedicated control-plane clients, never hedged: hedging an
// update.commit would re-issue it against a store that already consumed
// the version.
//
// A killed replica holding a private store gets no stream (nothing
// serves it); it returns stale and its staleness shows in its
// <shard>.model_version gauge until the next publish or rebuild.
func (c *Cluster) Publisher() (*core.Publisher, error) {
	if !c.Plan.IsDistributed() {
		return nil, fmt.Errorf("cluster: singular deployments hold no sparse shards; swap dense weights via Engine.SwapDense")
	}
	pub := &core.Publisher{
		Engine: c.Engine,
		Rec:    c.MainRec,
		Obs:    c.Obs,
		Shards: make(map[int][]core.ShardEndpoint),
	}
	c.replicaMu.Lock()
	defer c.replicaMu.Unlock()
	for si, reps := range c.replicas {
		seen := make(map[*core.SparseShard]bool)
		var eps []core.ShardEndpoint
		for _, rep := range reps {
			if rep.srv == nil || seen[rep.store] {
				continue
			}
			seen[rep.store] = true
			addr := rep.srv.Addr()
			caller, ok := c.pubClients[addr]
			if !ok {
				var err error
				caller, err = rpc.DialPool(addr, nil, 1)
				if err != nil {
					return nil, fmt.Errorf("cluster: dialing publish plane for %s replica %d: %w", rep.store.ShardName, rep.idx, err)
				}
				c.pubClients[addr] = caller
			}
			eps = append(eps, core.ShardEndpoint{Service: rep.store.ShardName, Addr: addr, Caller: caller})
		}
		if len(eps) == 0 {
			return nil, fmt.Errorf("cluster: shard %d has no live replica to publish to", si+1)
		}
		pub.Shards[si+1] = eps
	}
	return pub, nil
}

// Publish streams one delta set to every table store in the deployment
// and swaps dense weights on the engine, usable mid-replay: requests
// keep flowing while rows stage and each store's cutover is atomic.
// Publishes serialize against each other; events accumulate on the
// cluster's freshness timeline.
func (c *Cluster) Publish(ds *core.DeltaSet) (*core.PublishReport, error) {
	c.publishMu.Lock()
	defer c.publishMu.Unlock()
	// Rebuilt per publish: replicas killed, revived, or replaced since
	// the last call changed which endpoints cover the store set.
	pub, err := c.Publisher()
	if err != nil {
		return nil, err
	}
	report, err := pub.Publish(ds)
	if err != nil {
		return nil, err
	}
	for {
		cur := c.pubVersion.Load()
		if ds.Version <= cur || c.pubVersion.CompareAndSwap(cur, ds.Version) {
			break
		}
	}
	c.pubMu.Lock()
	c.pubEvents = append(c.pubEvents, report.Events...)
	c.pubMu.Unlock()
	return report, nil
}

// PublishTimeline returns a copy of the cumulative freshness timeline:
// one event per (publish, endpoint), in publish order.
func (c *Cluster) PublishTimeline() []core.PublishEvent {
	c.pubMu.Lock()
	defer c.pubMu.Unlock()
	out := make([]core.PublishEvent, len(c.pubEvents))
	copy(out, c.pubEvents)
	return out
}

// PublishedVersion reports the highest delta-set version published into
// this deployment (0 before any publish).
func (c *Cluster) PublishedVersion() uint64 { return c.pubVersion.Load() }
