package cluster_test

import (
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/sharding"
	"repro/internal/workload"
)

// tierFor enables the tiered store on the small test model: every table
// int8-quantized (the model's tables are far below the planner's default
// size floor, so the floor is lowered) behind a modest hot-row cache.
func tierFor(cfg *model.Config) *core.TierConfig {
	return &core.TierConfig{
		CacheMB: 0.5,
		Plan: sharding.PlanTiers(cfg, sharding.TierOptions{
			ColdPrecision: sharding.PrecisionInt8, MinTableBytes: 1,
		}),
	}
}

// bootTiered boots a 4-shard deployment with the tiered store enabled.
func bootTiered(t *testing.T, cfg model.Config, m *model.Model) (*cluster.Cluster, *serve.Replayer) {
	t.Helper()
	pooling := workload.EstimatePooling(workload.NewGenerator(cfg, 5), 50)
	plan, err := sharding.LoadBalanced(&cfg, 4, pooling)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.Boot(m, plan, cluster.Options{Seed: 11, Tier: tierFor(&cfg)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	client, err := cl.DialMain()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return cl, serve.NewReplayer(client)
}

// TestTieredRebalanceChaosIdentity is the cluster-level chaos check for
// the tiered store's coherence contract: two identical int8+cache
// deployments replay the same skewed scored stream from multiple
// concurrent clients while one of them runs a live Rebalance mid-replay
// — quantized rows streaming between shards, caches dying with their
// table copies, budgets re-apportioning — and every request's scores
// must stay byte-identical to the undisturbed control. Run under -race
// in CI, it doubles as the data-race sweep over the cache's lock-free
// read path racing admissions, migration installs, and retiering.
func TestTieredRebalanceChaosIdentity(t *testing.T) {
	cfg := smallModel()
	m := model.Build(cfg)

	// Shared drifted stream: heat on shard 1's tables gives the
	// rebalancer real moves to make, row skew gives the caches real hits.
	newStream := func(cl *cluster.Cluster, n int) []*workload.Request {
		gen := workload.NewGenerator(cfg, 23)
		gen.EnableRowSkew(1.4)
		skew := make(map[int]float64)
		for _, id := range cl.Plan.Shards[0].Tables {
			skew[id] = 6
		}
		return workload.ApplySkew(gen.GenerateBatch(n), skew)
	}

	const n = 36
	const workers = 3

	// Control: replay the stream once, undisturbed, single-threaded.
	control, rep := bootTiered(t, cfg, m)
	stream := newStream(control, n)
	if warm := rep.RunSerial(stream[:8]); warm.Failed() > 0 {
		t.Fatal(warm.Errors[0])
	}
	want, res := rep.RunSerialScored(stream)
	if res.Failed() > 0 {
		t.Fatal(res.Errors[0])
	}

	// Chaos deployment: same stream sliced across concurrent clients,
	// racing a live rebalance.
	chaos, chaosRep := bootTiered(t, cfg, m)
	if warm := chaosRep.RunSerial(newStream(chaos, n)[:8]); warm.Failed() > 0 {
		t.Fatal(warm.Errors[0])
	}
	chaosStream := newStream(chaos, n)

	epochsBefore := make([]uint64, 0, len(chaos.Shards()))
	for _, sh := range chaos.Shards() {
		epochsBefore = append(epochsBefore, sh.Epoch())
	}

	got := make([][][]float32, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client, err := chaos.DialMain()
			if err != nil {
				errs[w] = err
				return
			}
			defer client.Close()
			rep := serve.NewReplayer(client)
			for i := w; i < len(chaosStream); i += workers {
				scores, _, err := rep.Send(chaosStream[i])
				if err != nil {
					errs[w] = err
					return
				}
				got[w] = append(got[w], scores)
			}
		}(w)
	}
	var report *core.RebalanceReport
	var rbErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		report, rbErr = chaos.Rebalance(sharding.RebalanceOptions{MoveBudget: 6})
	}()
	wg.Wait()
	if rbErr != nil {
		t.Fatal(rbErr)
	}
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if !report.Moved() {
		t.Fatalf("rebalance against a 6x skew moved nothing: %v", report)
	}
	moved := false
	for i, sh := range chaos.Shards() {
		if sh.Epoch() != epochsBefore[i] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("no shard epoch advanced across the migration")
	}

	// Byte-identity: every request's scores match the control's exactly,
	// whether it ran before, during, or after the cutover.
	for w := 0; w < workers; w++ {
		wi := 0
		for i := w; i < len(chaosStream); i += workers {
			requireSameScores(t, want[i], got[w][wi], "chaos", i)
			wi++
		}
	}

	// The tier stayed live through the migration: caches exist on both
	// deployments and the moved tables kept their int8 encoding.
	var hits int64
	fp32Tables := 0
	for _, st := range chaos.TierStats() {
		hits += st.Hits
		fp32Tables += st.FP32
	}
	if hits == 0 {
		t.Fatal("chaos deployment served no cache hits")
	}
	if fp32Tables != 0 {
		t.Fatalf("%d tables lost their quantized encoding across migration", fp32Tables)
	}

	// Sanity on the identity harness itself: control and chaos really ran
	// the same number of requests.
	if len(want) != len(chaosStream) {
		t.Fatalf("control scored %d requests, chaos %d", len(want), len(chaosStream))
	}
}
