package cluster

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/replication"
)

// Elastic replica-set resizing: the cluster-level capacity lever the
// co-serving scheduler pulls. A cluster booted with parked slots
// (Options.ActiveReplicas < SparseReplicas) holds reclaimable headroom;
// SetActiveReplicas grows into it by rebuilding each shard's next parked
// replica from a healthy peer over the snapshot protocol — the same
// machinery ReplaceReplica runs, because physically the move is the
// same: a server newly assigned to this model must stream the model's
// embedding tables before it can serve — or shrinks by draining and
// parking trailing replicas, returning their servers to the shared
// pool. Replica 0 of every shard never parks: a model's replica set
// never drops below one.

// ActiveReplicas reports how many replica slots per shard currently
// serve (the remainder are parked headroom).
func (c *Cluster) ActiveReplicas() int {
	c.replicaMu.Lock()
	defer c.replicaMu.Unlock()
	return c.active
}

// ReplicaSlots reports how many replica slots per shard exist in total,
// serving or parked (0 for singular plans).
func (c *Cluster) ReplicaSlots() int {
	if len(c.replicas) == 0 {
		return 0
	}
	return len(c.replicas[0])
}

// SetActiveReplicas grows or shrinks every shard's serving replica set
// to n slots. Growth activates parked slots one shard at a time: a
// fresh, private table store rebuilds byte-identically from a healthy
// peer (stats for every rebuilt shard are returned — the cost the
// reallocation timeline charges), a server boots over it, and the
// replica re-enters the hedged rotation. Shrink disables the trailing
// slots first (no new calls route to them), waits a short drain grace
// for in-flight calls, then tears the servers down and reclaims any
// private stores. n is clamped to at least one serving replica; growth
// past the booted slot count is an error.
func (c *Cluster) SetActiveReplicas(n int) ([]core.RebuildStats, error) {
	// Same order as ReplaceReplica: rebalanceMu before replicaMu. A
	// rebuild mid-migration would snapshot tables later commits no
	// longer update, and concurrent resizes would plan against each
	// other's in-flight moves.
	c.rebalanceMu.Lock()
	defer c.rebalanceMu.Unlock()
	c.replicaMu.Lock()

	if len(c.replicas) == 0 {
		c.replicaMu.Unlock()
		return nil, fmt.Errorf("cluster: singular deployments have no replica slots to resize")
	}
	total := len(c.replicas[0])
	if n < 1 || n > total {
		c.replicaMu.Unlock()
		return nil, fmt.Errorf("cluster: active replicas %d out of range [1,%d]", n, total)
	}
	cur := c.active
	switch {
	case n == cur:
		c.replicaMu.Unlock()
		return nil, nil
	case n > cur:
		defer c.replicaMu.Unlock()
		return c.growTo(n)
	default:
		// shrinkTo manages replicaMu itself (it drops the lock across
		// the drain grace).
		return nil, c.shrinkTo(n)
	}
}

// growTo activates slots cur..n-1 on every shard. Caller holds
// rebalanceMu and replicaMu.
func (c *Cluster) growTo(n int) ([]core.RebuildStats, error) {
	var stats []core.RebuildStats
	for idx := c.active; idx < n; idx++ {
		for shard := range c.replicas {
			rep := c.replicas[shard][idx]
			if rep.srv != nil {
				return stats, fmt.Errorf("cluster: %s replica %d is unexpectedly alive while parked", core.ServiceName(shard+1), idx)
			}
			st, err := c.rebuildFromPeer(rep, shard)
			if err != nil {
				return stats, err
			}
			if err := c.startReplica(rep); err != nil {
				return stats, err
			}
			rep.slot.Swap(rep.client)
			if h := c.Hedged[rep.store.ShardName]; h != nil {
				// Clear any breaker state left from the slot's previous
				// tour of duty, then re-admit it to the rotation.
				h.Health.ReportSuccess(idx)
				h.SetEnabled(idx, true)
			}
			stats = append(stats, st)
		}
		c.active = idx + 1
	}
	return stats, nil
}

// shrinkTo parks slots n..cur-1 on every shard: disable, drain, tear
// down, reclaim. Caller holds rebalanceMu and replicaMu; shrinkTo
// releases replicaMu across the drain grace and returns with it
// released.
func (c *Cluster) shrinkTo(n int) error {
	cur := c.active
	for shard := range c.replicas {
		h := c.Hedged[c.shards[shard].ShardName]
		for idx := n; idx < cur; idx++ {
			if h != nil {
				h.SetEnabled(idx, false)
			}
		}
	}
	c.active = n
	c.replicaMu.Unlock()

	// Drain grace: disabled slots take no new calls, but calls already
	// dispatched need a moment to finish before their server closes
	// under them (a late casualty would fail over, so this is about
	// tail latency, not correctness). rebalanceMu is still held, so no
	// concurrent resize can re-enable these slots mid-drain.
	grace := 2 * c.opts.HedgeDelay
	if grace < 5*time.Millisecond {
		grace = 5 * time.Millisecond
	}
	if grace > 50*time.Millisecond {
		grace = 50 * time.Millisecond
	}
	time.Sleep(grace)

	c.replicaMu.Lock()
	defer c.replicaMu.Unlock()
	for shard := range c.replicas {
		for idx := n; idx < cur; idx++ {
			rep := c.replicas[shard][idx]
			rep.slot.Swap(replication.Unresponsive())
			if rep.srv != nil {
				rep.srv.Close() // waits for in-flight handlers
				rep.client.Close()
				rep.srv, rep.client = nil, nil
			}
			if rep.store != c.shards[shard] {
				c.removeRebuilt(rep.store)
				rep.store.Close()
				rep.store = c.shards[shard]
			}
		}
		c.refreshRegistry(shard)
	}
	return nil
}

// removeRebuilt drops a reclaimed private store from the
// close-with-cluster list (the shrink path closes it now). Caller holds
// replicaMu.
func (c *Cluster) removeRebuilt(s *core.SparseShard) {
	for i, sh := range c.rebuilt {
		if sh == s {
			c.rebuilt = append(c.rebuilt[:i], c.rebuilt[i+1:]...)
			return
		}
	}
}
