package cluster_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/frontend"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/sharding"
	"repro/internal/trace"
	"repro/internal/workload"
)

// smallModel is a fast two-net config for integration tests: same
// structure as DRM1/DRM2 but tiny tables and cheap MLPs.
func smallModel() model.Config {
	cfg := model.DRM2()
	cfg.Name = "DRM2" // keep name for per-request table logic (none)
	// Shrink: keep table count but cut rows to a handful.
	for i := range cfg.Tables {
		cfg.Tables[i].Rows = 64 + i%7
		if cfg.Tables[i].PoolingFactor > 4 {
			cfg.Tables[i].PoolingFactor = 4
		}
	}
	cfg.MeanItems = 6
	cfg.DefaultBatch = 3
	return cfg
}

// execDirect runs requests through an engine without RPC (plan singular)
// and returns the scores, the ground truth for distributed equivalence.
func execDirect(t *testing.T, m *model.Model, reqs []*workload.Request) [][]float32 {
	t.Helper()
	rec := trace.NewRecorder("main", 1<<16)
	eng, err := core.NewEngine(m, sharding.Singular(&m.Config), core.EngineConfig{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	var out [][]float32
	for i, req := range reqs {
		scores, err := eng.Execute(trace.Context{TraceID: uint64(i + 1)}, core.FromWorkload(req))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, scores)
	}
	return out
}

func plansUnderTest(t *testing.T, cfg *model.Config) []*sharding.Plan {
	t.Helper()
	pooling := workload.EstimatePooling(workload.NewGenerator(*cfg, 5), 50)
	plans := []*sharding.Plan{sharding.OneShard(cfg)}
	for _, n := range []int{2, 4} {
		lb, err := sharding.LoadBalanced(cfg, n, pooling)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := sharding.CapacityBalanced(cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		nsbp, err := sharding.NSBP(cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		plans = append(plans, lb, cb, nsbp)
	}
	return plans
}

// TestDistributedMatchesSingular is the system's central correctness
// property: for every sharding strategy, the distributed deployment must
// produce bit-identical scores to the non-distributed model (fp32 sums
// are reassociated only across table partitions, which sum in fixed part
// order through the collector — still deterministic, and within fp32
// tolerance of the singular result).
func TestDistributedMatchesSingular(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := smallModel()
	m := model.Build(cfg)
	reqs := workload.NewGenerator(cfg, 42).GenerateBatch(4)
	want := execDirect(t, m, reqs)

	for _, plan := range plansUnderTest(t, &cfg) {
		plan := plan
		t.Run(plan.Name(), func(t *testing.T) {
			cl, err := cluster.Boot(m, plan, cluster.Options{Seed: 7, ClockSkew: true, SpanCapacity: 1 << 16})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			for i, req := range reqs {
				got, err := cl.Engine.Execute(trace.Context{TraceID: uint64(100 + i)}, core.FromWorkload(req))
				if err != nil {
					t.Fatal(err)
				}
				for j := range got {
					if diff := math.Abs(float64(got[j] - want[i][j])); diff > 1e-5 {
						t.Fatalf("req %d item %d: distributed %v vs singular %v", i, j, got[j], want[i][j])
					}
				}
			}
		})
	}
}

func TestReplayerSerialOverRPC(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := smallModel()
	m := model.Build(cfg)
	plan, err := sharding.CapacityBalanced(&cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.Boot(m, plan, cluster.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	client, err := cl.DialMain()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	reqs := workload.NewGenerator(cfg, 8).GenerateBatch(6)
	res := serve.NewReplayer(client).RunSerial(reqs)
	if res.Failed() != 0 {
		t.Fatalf("replay failures: %v", res.Errors)
	}
	if res.Sent != 6 || len(res.ClientE2E) != 6 {
		t.Fatalf("sent %d, e2e %d", res.Sent, len(res.ClientE2E))
	}

	// Trace pipeline: analyze and verify the distributed attribution.
	bs := trace.Analyze(cl.Collector.Gather(), "main")
	if len(bs) != 6 {
		t.Fatalf("analyzed %d requests, want 6", len(bs))
	}
	for _, b := range bs {
		if b.E2E <= 0 {
			t.Errorf("trace %d: non-positive E2E", b.TraceID)
		}
		if b.RPCCalls == 0 {
			t.Errorf("trace %d: no RPC calls recorded", b.TraceID)
		}
		if b.EmbeddedPortion <= 0 {
			t.Errorf("trace %d: no embedded portion", b.TraceID)
		}
		if b.BoundShard == "" {
			t.Errorf("trace %d: no bounding shard", b.TraceID)
		}
		// Injected network latency must dominate raw loopback time; with
		// a ~120µs base one-way link the bounding network share must be
		// visible (paper: network latency > operator latency).
		if b.BoundNetwork < 50*time.Microsecond {
			t.Errorf("trace %d: bounding network %v suspiciously small", b.TraceID, b.BoundNetwork)
		}
		if b.BoundNetwork <= b.BoundSparseOps {
			t.Logf("trace %d: network %v vs sparse ops %v (paper expects network to dominate)", b.TraceID, b.BoundNetwork, b.BoundSparseOps)
		}
	}
	if cl.Collector.TotalDrops() != 0 {
		t.Errorf("dropped %d spans", cl.Collector.TotalDrops())
	}
}

func TestReplayerOpenLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := smallModel()
	m := model.Build(cfg)
	cl, err := cluster.Boot(m, sharding.Singular(&cfg), cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	client, err := cl.DialMain()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	reqs := workload.NewGenerator(cfg, 9).GenerateBatch(8)
	res := serve.NewReplayer(client).RunOpenLoop(reqs, 500)
	if res.Failed() != 0 {
		t.Fatalf("open-loop failures: %v", res.Errors)
	}
	if res.Sent != 8 {
		t.Fatalf("sent %d", res.Sent)
	}
}

func TestClusterShardFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := smallModel()
	m := model.Build(cfg)
	plan, err := sharding.CapacityBalanced(&cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.Boot(m, plan, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Kill one sparse shard; requests must fail cleanly, not hang.
	cl.KillSparse(0)
	req := workload.NewGenerator(cfg, 10).Next()
	done := make(chan error, 1)
	go func() {
		_, err := cl.Engine.Execute(trace.Context{TraceID: 999}, core.FromWorkload(req))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("execution should fail when a sparse shard is down")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("execution hung on dead shard")
	}
}

func TestBatchSizeOverride(t *testing.T) {
	cfg := smallModel()
	m := model.Build(cfg)
	cl, err := cluster.Boot(m, sharding.Singular(&cfg), cluster.Options{BatchSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Engine.BatchSize() != 1000 {
		t.Errorf("BatchSize = %d", cl.Engine.BatchSize())
	}
}

func TestRegistryPopulated(t *testing.T) {
	cfg := smallModel()
	m := model.Build(cfg)
	plan, err := sharding.CapacityBalanced(&cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.Boot(m, plan, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	svcs := cl.Registry.Services()
	if len(svcs) != 3 { // main + 2 sparse
		t.Fatalf("services = %v", svcs)
	}
}

// TestFrontedClusterEndToEnd boots a distributed deployment with the
// SLA-aware frontend and hedged sparse replicas, drives concurrent
// open-loop traffic, and checks (a) scores match the singular ground
// truth, (b) requests actually coalesced into fewer engine batches.
func TestFrontedClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := smallModel()
	m := model.Build(cfg)
	plan, err := sharding.CapacityBalanced(&cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.Boot(m, plan, cluster.Options{
		Seed: 3,
		Frontend: &frontend.Config{
			BatchWait:        3 * time.Millisecond,
			MaxBatchRequests: 8,
		},
		SparseReplicas: 2,
		HedgeDelay:     20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if len(cl.Hedged) != plan.NumShards {
		t.Fatalf("hedged callers for %d services, want %d", len(cl.Hedged), plan.NumShards)
	}

	client, err := cl.DialMain()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const n = 16
	reqs := workload.NewGenerator(cfg, 8).GenerateBatch(n)
	want := execDirect(t, m, reqs)

	res := serve.NewReplayer(client).RunOpenLoop(reqs, 2000)
	if res.Failed() != 0 {
		t.Fatalf("replay failures: %v", res.Errors)
	}
	if res.Sent != n || res.Fallbacks != 0 {
		t.Fatalf("result = %+v", res)
	}

	st := cl.Frontend.Stats()
	if st.Completed != n {
		t.Fatalf("frontend completed %d of %d", st.Completed, n)
	}
	if st.Batches >= n {
		t.Errorf("%d engine batches for %d concurrent requests: no coalescing", st.Batches, n)
	}

	// Scores through the hedged distributed engine must equal the
	// singular ground truth.
	for i, req := range reqs {
		got, err := cl.Engine.Execute(trace.Context{TraceID: uint64(500 + i)}, core.FromWorkload(req))
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if math.Abs(float64(got[j]-want[i][j])) > 1e-5 {
				t.Fatalf("request %d item %d: %v != %v", i, j, got[j], want[i][j])
			}
		}
	}
}
