package cluster_test

import (
	"testing"

	"repro/internal/cluster"
)

// hot/cold/warm are canonical loads for the planner tables.
func load(name string, active int, mut ...func(*cluster.TenantLoad)) cluster.TenantLoad {
	l := cluster.TenantLoad{Name: name, Active: active, Min: 1, Max: 4, UnitWeight: 1}
	for _, m := range mut {
		m(&l)
	}
	return l
}

func hot(l *cluster.TenantLoad)  { l.BusyFrac = 0.95 }
func cold(l *cluster.TenantLoad) { l.BusyFrac = 0.05 }
func warm(l *cluster.TenantLoad) { l.BusyFrac = 0.5 }

// TestPlanElasticTable pins the decision function: hysteresis bounds,
// budget exhaustion, pairing, floors, caps, cooldowns, health gating.
func TestPlanElasticTable(t *testing.T) {
	cases := []struct {
		name  string
		loads []cluster.TenantLoad
		free  float64
		cfg   cluster.ElasticConfig
		want  []cluster.Move // compared on Model/From/To only
	}{
		{
			name:  "hot tenant grows from free pool",
			loads: []cluster.TenantLoad{load("a", 1, hot), load("b", 1, warm)},
			free:  1,
			want:  []cluster.Move{{Model: "a", From: 1, To: 2}},
		},
		{
			name:  "dead band holds: warm tenants make no moves",
			loads: []cluster.TenantLoad{load("a", 2, warm), load("b", 2, warm)},
			free:  2,
			want:  nil,
		},
		{
			name:  "queue occupancy alone can claim",
			loads: []cluster.TenantLoad{load("a", 1, func(l *cluster.TenantLoad) { l.QueueFrac = 0.9 })},
			free:  1,
			want:  []cluster.Move{{Model: "a", From: 1, To: 2}},
		},
		{
			name: "sheds pin pressure to one",
			loads: []cluster.TenantLoad{
				load("a", 1, cold, func(l *cluster.TenantLoad) { l.ShedDelta = 3 }),
			},
			free: 1,
			want: []cluster.Move{{Model: "a", From: 1, To: 2}},
		},
		{
			name:  "empty pool pairs claimant with coldest donor",
			loads: []cluster.TenantLoad{load("a", 1, hot), load("b", 2, cold)},
			free:  0,
			cfg:   cluster.ElasticConfig{MoveBudget: 2},
			want:  []cluster.Move{{Model: "b", From: 2, To: 1}, {Model: "a", From: 1, To: 2}},
		},
		{
			name:  "budget one cannot afford a paired reallocation",
			loads: []cluster.TenantLoad{load("a", 1, hot), load("b", 2, cold)},
			free:  0,
			cfg:   cluster.ElasticConfig{MoveBudget: 1},
			// The claim is unaffordable this pass; the leftover budget
			// still reclaims the idle donor into the pool, so the next
			// pass can grant the claim for one move.
			want: []cluster.Move{{Model: "b", From: 2, To: 1}},
		},
		{
			name: "budget exhaustion grants hottest claimants first",
			loads: []cluster.TenantLoad{
				load("a", 1, func(l *cluster.TenantLoad) { l.BusyFrac = 0.85 }),
				load("b", 1, func(l *cluster.TenantLoad) { l.BusyFrac = 0.95 }),
				load("c", 1, func(l *cluster.TenantLoad) { l.BusyFrac = 0.90 }),
			},
			free: 3,
			cfg:  cluster.ElasticConfig{MoveBudget: 2},
			want: []cluster.Move{{Model: "b", From: 1, To: 2}, {Model: "c", From: 1, To: 2}},
		},
		{
			name:  "never below one serving replica",
			loads: []cluster.TenantLoad{load("a", 1, hot), load("b", 1, cold)},
			free:  0,
			cfg:   cluster.ElasticConfig{MoveBudget: 4},
			want:  nil,
		},
		{
			name: "min floor blocks donation",
			loads: []cluster.TenantLoad{
				load("a", 1, hot),
				load("b", 2, cold, func(l *cluster.TenantLoad) { l.Min = 2 }),
			},
			free: 0,
			cfg:  cluster.ElasticConfig{MoveBudget: 4},
			want: nil,
		},
		{
			name: "max cap blocks the claim",
			loads: []cluster.TenantLoad{
				load("a", 2, hot, func(l *cluster.TenantLoad) { l.Max = 2 }),
			},
			free: 2,
			want: nil,
		},
		{
			name: "cooldown freezes both sides",
			loads: []cluster.TenantLoad{
				load("a", 1, hot, func(l *cluster.TenantLoad) { l.Cooldown = 1 }),
				load("b", 2, cold, func(l *cluster.TenantLoad) { l.Cooldown = 2 }),
			},
			free: 1,
			cfg:  cluster.ElasticConfig{MoveBudget: 4},
			want: nil,
		},
		{
			name: "no healthy replica means no rebuild seed, no grow",
			loads: []cluster.TenantLoad{
				load("a", 1, hot, func(l *cluster.TenantLoad) { l.Unhealthy = 1 }),
			},
			free: 1,
			want: nil,
		},
		{
			name:  "idle reclaim returns excess to the pool",
			loads: []cluster.TenantLoad{load("a", 3, cold), load("b", 1, warm)},
			free:  0,
			want:  []cluster.Move{{Model: "a", From: 3, To: 2}},
		},
		{
			name: "heavy claimant needs two light donors",
			loads: []cluster.TenantLoad{
				load("a", 1, hot, func(l *cluster.TenantLoad) { l.UnitWeight = 2 }),
				load("b", 2, cold),
				load("c", 2, cold),
			},
			free: 0,
			cfg:  cluster.ElasticConfig{MoveBudget: 3},
			want: []cluster.Move{
				{Model: "b", From: 2, To: 1},
				{Model: "c", From: 2, To: 1},
				{Model: "a", From: 1, To: 2},
			},
		},
		{
			name: "heavy claimant starves on budget two, donors untouched",
			loads: []cluster.TenantLoad{
				load("a", 1, hot, func(l *cluster.TenantLoad) { l.UnitWeight = 2 }),
				load("b", 2, cold),
				load("c", 2, warm),
			},
			free: 0,
			cfg:  cluster.ElasticConfig{MoveBudget: 2},
			// The claim is unaffordable (needs two moves of shrink plus
			// one grow); leftover budget still reclaims the idle donor.
			want: []cluster.Move{{Model: "b", From: 2, To: 1}},
		},
		{
			name:  "one step per tenant per pass",
			loads: []cluster.TenantLoad{load("a", 1, hot)},
			free:  4,
			cfg:   cluster.ElasticConfig{MoveBudget: 4},
			want:  []cluster.Move{{Model: "a", From: 1, To: 2}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := cluster.PlanElastic(tc.loads, tc.free, tc.cfg)
			if len(got) != len(tc.want) {
				t.Fatalf("PlanElastic = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i].Model != tc.want[i].Model || got[i].From != tc.want[i].From || got[i].To != tc.want[i].To {
					t.Errorf("move %d = %v, want %+v", i, got[i], tc.want[i])
				}
				if got[i].Reason == "" {
					t.Errorf("move %d carries no reason", i)
				}
			}
		})
	}
}

// TestPressure pins the demand scalar.
func TestPressure(t *testing.T) {
	if p := cluster.Pressure(cluster.TenantLoad{QueueFrac: 0.3, BusyFrac: 0.6}); p != 0.6 {
		t.Errorf("Pressure = %v, want 0.6 (max of queue and busy)", p)
	}
	if p := cluster.Pressure(cluster.TenantLoad{QueueFrac: 0.1, ShedDelta: 1}); p != 1 {
		t.Errorf("Pressure with sheds = %v, want 1", p)
	}
}
