package cluster_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sharding"
	"repro/internal/trace"
	"repro/internal/workload"
)

// BenchmarkEngineSingularDRM1 measures raw engine throughput (no RPC
// front door): one full DRM1 ranking request per iteration.
func BenchmarkEngineSingularDRM1(b *testing.B) {
	cfg := model.ByName("DRM1")
	m := model.Build(cfg)
	rec := trace.NewRecorder("main", 1<<22)
	eng, _ := core.NewEngine(m, sharding.Singular(&cfg), core.EngineConfig{Recorder: rec})
	gen := workload.NewGenerator(cfg, 1)
	reqs := gen.GenerateBatch(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := reqs[i%20]
		if _, err := eng.Execute(trace.Context{TraceID: uint64(i + 1)}, core.FromWorkload(req)); err != nil {
			b.Fatal(err)
		}
		if rec.Len() > 1<<21 {
			rec.Reset()
		}
	}
}
