package cluster

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/replication"
	"repro/internal/rpc"
)

// Failure injection and recovery orchestration: the cluster-level hooks
// the fault experiment and the chaos tests drive. A replica is killed by
// tearing its server down and swapping an unresponsive caller into its
// slot — in-flight calls fail promptly (failover rescues them) and new
// calls to that replica go silent, the failure mode a partitioned or
// hung server presents and the one health ejection exists for. Recovery
// is either a revive (a new server over the shard's shared store — the
// process restarted) or a replace (a fresh, empty store rebuilt
// byte-identically from a healthy peer over the sparse.snapshot.*
// surface — the machine was lost).

// replica validates indices and returns the addressed replica. Caller
// holds replicaMu.
func (c *Cluster) replica(shard, idx int) (*sparseReplica, error) {
	if shard < 0 || shard >= len(c.replicas) {
		return nil, fmt.Errorf("cluster: no sparse shard %d", shard)
	}
	if idx < 0 || idx >= len(c.replicas[shard]) {
		return nil, fmt.Errorf("cluster: sparse%d has no replica %d", shard+1, idx)
	}
	return c.replicas[shard][idx], nil
}

// KillReplica tears down one sparse serving replica mid-traffic: the
// server closes (its in-flight requests fail promptly and fail over),
// and the replica's slot goes unresponsive, so anything still routed at
// it — a health probe, or every call when ejection is disabled — hangs
// until hedged past. Requires hedging (HedgeDelay > 0) on replicated
// shards to mask the silence; on a sole replica the shard simply goes
// dark.
func (c *Cluster) KillReplica(shard, idx int) error {
	c.replicaMu.Lock()
	defer c.replicaMu.Unlock()
	rep, err := c.replica(shard, idx)
	if err != nil {
		return err
	}
	if rep.srv == nil {
		return fmt.Errorf("cluster: %s replica %d is already dead", core.ServiceName(shard+1), idx)
	}
	rep.slot.Swap(replication.Unresponsive())
	rep.srv.Close()
	rep.client.Close()
	rep.srv, rep.client = nil, nil
	// If the control plane was registered at the dead server, move it to
	// a surviving replica (same shared store) so migration stays
	// available through the dead window.
	c.refreshRegistry(shard)
	return nil
}

// ReviveReplica restarts a killed replica over its existing table store
// (the shared shard store, or a previously rebuilt one): a new server
// boots, a fresh client splices into the slot, and the next health
// probe re-admits the replica to the rotation.
func (c *Cluster) ReviveReplica(shard, idx int) error {
	c.replicaMu.Lock()
	defer c.replicaMu.Unlock()
	rep, err := c.replica(shard, idx)
	if err != nil {
		return err
	}
	if rep.srv != nil {
		return fmt.Errorf("cluster: %s replica %d is alive", core.ServiceName(shard+1), idx)
	}
	if err := c.startReplica(rep); err != nil {
		return err
	}
	rep.slot.Swap(rep.client)
	c.refreshRegistry(shard)
	return nil
}

// ReplaceReplica stands up a replacement for a killed replica whose
// storage is gone: a fresh, empty table store rebuilds itself from a
// healthy peer replica of the same shard over the snapshot protocol
// (byte-identical, cold-cached), then a new server over it splices into
// the slot. The replacement has its own store from here on — the
// rebuild path is exactly what a standalone drmserve replacement
// process would run.
func (c *Cluster) ReplaceReplica(shard, idx int) (core.RebuildStats, error) {
	// Serialize against Rebalance (same order: rebalanceMu before
	// replicaMu): rebuilding from a peer whose tables are mid-migration
	// would snapshot a table set later commits no longer update, and the
	// Migrator's homogeneous-fleet guard only protects future passes.
	c.rebalanceMu.Lock()
	defer c.rebalanceMu.Unlock()
	c.replicaMu.Lock()
	defer c.replicaMu.Unlock()
	var st core.RebuildStats
	rep, err := c.replica(shard, idx)
	if err != nil {
		return st, err
	}
	if rep.srv != nil {
		return st, fmt.Errorf("cluster: %s replica %d is alive; kill it first", core.ServiceName(shard+1), idx)
	}
	st, err = c.rebuildFromPeer(rep, shard)
	if err != nil {
		return st, err
	}
	if err := c.startReplica(rep); err != nil {
		return st, err
	}
	rep.slot.Swap(rep.client)
	c.refreshRegistry(shard)
	return st, nil
}

// rebuildFromPeer streams a fresh, private table store for rep from a
// live peer replica of the same shard over the snapshot protocol and
// installs it as rep's store (tracked in c.rebuilt). The caller owns
// starting a server over it. Caller holds rebalanceMu and replicaMu.
func (c *Cluster) rebuildFromPeer(rep *sparseReplica, shard int) (core.RebuildStats, error) {
	var st core.RebuildStats
	var peer *sparseReplica
	for _, p := range c.replicas[shard] {
		if p != rep && p.srv != nil {
			peer = p
			break
		}
	}
	if peer == nil {
		return st, fmt.Errorf("cluster: %s has no healthy peer to rebuild from", core.ServiceName(shard+1))
	}

	fresh := core.NewSparseShard(rep.store.ShardName, rep.rec)
	fresh.OpComputeScale = c.plat.OpComputeScale
	if c.opts.Tier != nil {
		fresh.SetTier(c.opts.Tier)
	}
	// Rebuild over a plain control-plane connection to the peer — the
	// serving callers may be hedged, and a rebuild must stream from one
	// consistent peer.
	ctrl, err := rpc.DialPool(peer.srv.Addr(), nil, 1)
	if err != nil {
		fresh.Close()
		return st, fmt.Errorf("cluster: dialing rebuild peer for %s: %w", rep.store.ShardName, err)
	}
	st, err = fresh.RebuildFromPeer(ctrl, 0)
	ctrl.Close()
	if err != nil {
		fresh.Close()
		return st, err
	}

	rep.store = fresh
	c.rebuilt = append(c.rebuilt, fresh)
	return st, nil
}

// ReplicaStore exposes the table store replica (shard, idx) currently
// serves — the shared shard store, or its private rebuilt one — for
// tests and experiments that assert on rebuild results.
func (c *Cluster) ReplicaStore(shard, idx int) (*core.SparseShard, error) {
	c.replicaMu.Lock()
	defer c.replicaMu.Unlock()
	rep, err := c.replica(shard, idx)
	if err != nil {
		return nil, err
	}
	return rep.store, nil
}

// HealthSnapshots reports every hedged service's replica-breaker state
// (empty when replication or health tracking is off).
func (c *Cluster) HealthSnapshots() map[string]replication.HealthSnapshot {
	out := make(map[string]replication.HealthSnapshot, len(c.Hedged))
	for name, h := range c.Hedged {
		out[name] = h.HealthSnapshot()
	}
	return out
}

// KillSparse abruptly stops the i-th sparse server in boot order
// (0-based, shard-major across replicas), for failure-injection tests
// that want prompt connection failures: in a serving fleet shards "may
// fail and need to restart". Unlike KillReplica it leaves the replica's
// slot pointing at the dead client, so callers see errors, not silence.
// The replica is marked dead like any other kill — Revive/Replace and
// the peer scans treat it consistently.
func (c *Cluster) KillSparse(i int) {
	c.replicaMu.Lock()
	defer c.replicaMu.Unlock()
	n := 0
	for shard, reps := range c.replicas {
		for _, rep := range reps {
			if n == i {
				if rep.srv != nil {
					rep.srv.Close()
					rep.client.Close()
					rep.srv, rep.client = nil, nil
					c.refreshRegistry(shard)
				}
				return
			}
			n++
		}
	}
}
