package cluster

import (
	"fmt"
	"sort"
)

// The elastic capacity planner: a pure decision function mapping one
// observation window's per-model load signals to a bounded set of
// replica-set moves. Keeping it free of clocks, locks, and I/O makes
// the hysteresis and budget behavior table-testable; the Fleet owns
// gathering the signals and executing the moves (snapshot rebuilds on
// the way up, drain-and-reclaim on the way down).

// ElasticConfig tunes the planner. Zero values take the documented
// defaults.
type ElasticConfig struct {
	// ScaleUpAt is the pressure at or above which a model claims another
	// replica step (default 0.75).
	ScaleUpAt float64
	// ScaleDownAt is the pressure at or below which a model may donate a
	// replica step (default 0.25). The dead band between the thresholds
	// is the hysteresis that keeps noisy load from thrashing capacity.
	ScaleDownAt float64
	// MoveBudget caps replica-step moves (grows plus shrinks) per pass
	// (default 1): each move is a snapshot rebuild or a drain, and a
	// pass that reshapes the whole fleet at once trades a long
	// disruption for signals that were only ever one window old.
	MoveBudget int
	// Cooldown is how many passes a model sits out after moving
	// (default 1): a fresh replica needs at least one full window to
	// show up in the signals before it can justify the next move.
	Cooldown int
}

func (c ElasticConfig) withDefaults() ElasticConfig {
	if c.ScaleUpAt <= 0 {
		c.ScaleUpAt = 0.75
	}
	if c.ScaleDownAt <= 0 {
		c.ScaleDownAt = 0.25
	}
	if c.MoveBudget <= 0 {
		c.MoveBudget = 1
	}
	if c.Cooldown < 0 {
		c.Cooldown = 1
	}
	return c
}

// TenantLoad is one model's observation for a planning pass.
type TenantLoad struct {
	// Name identifies the model (and keys deterministic tie-breaks).
	Name string
	// Active is the model's current replica steps; Min/Max bound what
	// the planner may assign (Min is floored at one serving replica,
	// Max <= 0 means unbounded).
	Active, Min, Max int
	// UnitWeight is the capacity cost of one replica step in fleet
	// units (servers) — a model sharded N ways consumes N servers per
	// step. <= 0 defaults to 1.
	UnitWeight float64
	// QueueFrac is the model's admission-queue depth over its capacity
	// (0..1), BusyFrac its executor busy time over the window's wall
	// time. Pressure takes the worst of the two.
	QueueFrac, BusyFrac float64
	// ShedDelta is how many requests the model shed during the window;
	// any shedding pins pressure to 1 (the SLA is already bleeding —
	// queue and busy fractions are moot).
	ShedDelta uint64
	// Unhealthy counts the model's ejected replicas; a model with no
	// healthy replica cannot seed a snapshot rebuild and is skipped.
	Unhealthy int
	// Cooldown is how many passes of sit-out the model still owes from
	// its last move; positive means frozen this pass.
	Cooldown int
}

// Pressure is the planner's scalar demand signal for one model.
func Pressure(l TenantLoad) float64 {
	p := l.QueueFrac
	if l.BusyFrac > p {
		p = l.BusyFrac
	}
	if l.ShedDelta > 0 && p < 1 {
		p = 1
	}
	return p
}

// Move is one planned replica-step change for one model.
type Move struct {
	Model    string
	From, To int
	// Reason is a short operator-facing note ("pressure 1.00 >= 0.75",
	// "donated to DRM1", "idle reclaim").
	Reason string
}

// Grow reports whether the move adds a replica step.
func (m Move) Grow() bool { return m.To > m.From }

func (m Move) String() string {
	return fmt.Sprintf("%s %d->%d (%s)", m.Model, m.From, m.To, m.Reason)
}

// PlanElastic maps one window's loads to at most MoveBudget replica
// moves. freeUnits is the fleet capacity (servers) not currently
// assigned to any model. Claims are served hottest-first: from the free
// pool when it covers the claimant's step cost, otherwise by shrinking
// the coldest donors until it does (every shrink spends budget, so a
// paired reallocation costs at least two moves). Leftover budget then
// reclaims idle models' excess steps into the free pool. No model plans
// below max(1, Min), above Max, more than one step per pass, or while
// cooling down.
func PlanElastic(loads []TenantLoad, freeUnits float64, cfg ElasticConfig) []Move {
	cfg = cfg.withDefaults()
	budget := cfg.MoveBudget

	// Work on a copy: planning mutates Active/freeUnits bookkeeping.
	ls := make([]TenantLoad, len(loads))
	copy(ls, loads)
	for i := range ls {
		if ls[i].UnitWeight <= 0 {
			ls[i].UnitWeight = 1
		}
	}
	moved := make(map[string]bool, len(ls))
	floor := func(l TenantLoad) int {
		if l.Min > 1 {
			return l.Min
		}
		return 1
	}
	canDonate := func(l TenantLoad) bool {
		return !moved[l.Name] && l.Cooldown == 0 &&
			Pressure(l) <= cfg.ScaleDownAt && l.Active > floor(l)
	}

	// Hottest claimants first; coldest donors first. Sort indices so the
	// donor loop can mutate the shared slice.
	order := make([]int, len(ls))
	for i := range order {
		order[i] = i
	}
	claimOrder := append([]int(nil), order...)
	sort.SliceStable(claimOrder, func(a, b int) bool {
		pa, pb := Pressure(ls[claimOrder[a]]), Pressure(ls[claimOrder[b]])
		if pa != pb {
			return pa > pb
		}
		return ls[claimOrder[a]].Name < ls[claimOrder[b]].Name
	})
	donorOrder := append([]int(nil), order...)
	sort.SliceStable(donorOrder, func(a, b int) bool {
		pa, pb := Pressure(ls[donorOrder[a]]), Pressure(ls[donorOrder[b]])
		if pa != pb {
			return pa < pb
		}
		return ls[donorOrder[a]].Name < ls[donorOrder[b]].Name
	})

	var moves []Move
	for _, ci := range claimOrder {
		c := &ls[ci]
		p := Pressure(*c)
		if p < cfg.ScaleUpAt || c.Cooldown > 0 || moved[c.Name] {
			continue
		}
		if c.Max > 0 && c.Active >= c.Max {
			continue
		}
		if c.Unhealthy >= c.Active {
			continue // no healthy peer to seed the rebuild
		}
		if budget < 1 {
			break
		}
		// Shrink donors until the free pool covers the claim. A claim
		// costs one move and every donor shrink another, so the whole
		// reallocation must fit the remaining budget before any of it
		// is emitted.
		var shrinks []Move
		var donors []*TenantLoad
		need := c.UnitWeight - freeUnits
		spend := 1
		for _, di := range donorOrder {
			if need <= 1e-9 {
				break
			}
			d := &ls[di]
			if di == ci || !canDonate(*d) {
				continue
			}
			if spend+1 > budget {
				break
			}
			shrinks = append(shrinks, Move{
				Model: d.Name, From: d.Active, To: d.Active - 1,
				Reason: fmt.Sprintf("donated to %s (pressure %.2f <= %.2f)", c.Name, Pressure(*d), cfg.ScaleDownAt),
			})
			donors = append(donors, d)
			d.Active--
			moved[d.Name] = true
			need -= d.UnitWeight
			spend++
		}
		if need > 1e-9 {
			// Unaffordable claim: roll the tentative donor shrinks back so
			// those donors stay eligible for later claimants and the idle
			// reclaim below.
			for _, d := range donors {
				d.Active++
				moved[d.Name] = false
			}
			continue
		}
		moves = append(moves, shrinks...)
		// need = weight - (original free + donor-freed units), so the
		// pool after paying the claim is exactly its negation.
		freeUnits = -need
		moves = append(moves, Move{
			Model: c.Name, From: c.Active, To: c.Active + 1,
			Reason: fmt.Sprintf("pressure %.2f >= %.2f", p, cfg.ScaleUpAt),
		})
		c.Active++
		moved[c.Name] = true
		budget -= spend
	}

	// Idle reclaim: leftover budget returns cold models' excess steps to
	// the free pool so the next pass can grant claims without waiting on
	// a paired donor.
	for _, di := range donorOrder {
		if budget < 1 {
			break
		}
		d := &ls[di]
		if !canDonate(*d) {
			continue
		}
		moves = append(moves, Move{
			Model: d.Name, From: d.Active, To: d.Active - 1,
			Reason: fmt.Sprintf("idle reclaim (pressure %.2f <= %.2f)", Pressure(*d), cfg.ScaleDownAt),
		})
		d.Active--
		moved[d.Name] = true
		budget--
	}
	return moves
}
