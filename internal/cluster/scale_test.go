package cluster_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/sharding"
	"repro/internal/workload"
)

// bootElastic boots a deployment with parked replica headroom: three
// slots per shard, one serving.
func bootElastic(t *testing.T, m *model.Model, cfg model.Config) (*cluster.Cluster, *serve.Replayer) {
	t.Helper()
	plan, err := sharding.CapacityBalanced(&cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	opts := faultOptions()
	opts.SparseReplicas = 3
	opts.ActiveReplicas = 1
	cl, err := cluster.Boot(m, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	client, err := cl.DialMain()
	if err != nil {
		cl.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return cl, serve.NewReplayer(client)
}

// TestSetActiveReplicasRoundTrip grows a parked fleet to full strength
// and shrinks it back, checking byte-identical scores throughout, real
// snapshot rebuilds on the way up, and store reclamation on the way
// down.
func TestSetActiveReplicasRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := smallModel()
	m := model.Build(cfg)
	stream := workload.NewGenerator(cfg, 17).GenerateBatch(12)

	control, controlRep := bootFault(t, m, cfg)
	defer control.Close()
	want, res := controlRep.RunSerialScored(stream)
	if res.Failed() > 0 {
		t.Fatal(res.Errors[0])
	}

	cl, rep := bootElastic(t, m, cfg)
	defer cl.Close()
	if got := cl.ActiveReplicas(); got != 1 {
		t.Fatalf("ActiveReplicas at boot = %d, want 1", got)
	}
	if got := cl.ReplicaSlots(); got != 3 {
		t.Fatalf("ReplicaSlots = %d, want 3", got)
	}
	serveAll := func(phase string) {
		t.Helper()
		for i, req := range stream {
			got, _, err := rep.Send(req)
			if err != nil {
				t.Fatalf("%s request %d: %v", phase, i, err)
			}
			requireSameScores(t, want[i], got, phase, i)
		}
	}
	serveAll("parked")

	// Grow 1 → 3: each activation must stream a real snapshot per shard
	// and serve from a private store.
	stats, err := cl.SetActiveReplicas(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 4 { // 2 new slots × 2 shards
		t.Fatalf("got %d rebuild stats, want 4", len(stats))
	}
	for i, st := range stats {
		if st.Tables == 0 || st.Bytes == 0 {
			t.Fatalf("activation rebuild %d streamed nothing: %+v", i, st)
		}
	}
	if got := cl.ActiveReplicas(); got != 3 {
		t.Fatalf("ActiveReplicas after grow = %d, want 3", got)
	}
	for shard := 0; shard < 2; shard++ {
		for idx := 1; idx < 3; idx++ {
			store, err := cl.ReplicaStore(shard, idx)
			if err != nil {
				t.Fatal(err)
			}
			if store == cl.Shards()[shard] {
				t.Fatalf("activated shard %d replica %d still serves the shared store", shard, idx)
			}
			if store.Bytes() != cl.Shards()[shard].Bytes() {
				t.Fatalf("shard %d replica %d rebuilt %d bytes, peer has %d",
					shard, idx, store.Bytes(), cl.Shards()[shard].Bytes())
			}
		}
	}
	serveAll("grown")

	// Shrink 3 → 1: trailing replicas drain, their servers close, and
	// the private stores are reclaimed.
	if stats, err := cl.SetActiveReplicas(1); err != nil {
		t.Fatal(err)
	} else if len(stats) != 0 {
		t.Fatalf("shrink returned rebuild stats: %+v", stats)
	}
	if got := cl.ActiveReplicas(); got != 1 {
		t.Fatalf("ActiveReplicas after shrink = %d, want 1", got)
	}
	for shard := 0; shard < 2; shard++ {
		for idx := 1; idx < 3; idx++ {
			store, err := cl.ReplicaStore(shard, idx)
			if err != nil {
				t.Fatal(err)
			}
			if store != cl.Shards()[shard] {
				t.Fatalf("parked shard %d replica %d still owns a private store", shard, idx)
			}
		}
	}
	serveAll("shrunk")

	// Re-grow after a shrink: parked slots must be reusable.
	if _, err := cl.SetActiveReplicas(2); err != nil {
		t.Fatal(err)
	}
	serveAll("regrown")
}

// TestSetActiveReplicasGuards pins the bounds: never below one serving
// replica, never past the booted slot count, no-op on the current size,
// and out-of-range boot configs rejected.
func TestSetActiveReplicasGuards(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := smallModel()
	m := model.Build(cfg)

	plan, err := sharding.CapacityBalanced(&cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	badOpts := faultOptions()
	badOpts.SparseReplicas = 2
	badOpts.ActiveReplicas = 3
	if _, err := cluster.Boot(m, plan, badOpts); err == nil {
		t.Error("ActiveReplicas > SparseReplicas must be rejected at boot")
	}

	cl, rep := bootElastic(t, m, cfg)
	defer cl.Close()
	if _, err := cl.SetActiveReplicas(0); err == nil {
		t.Error("scaling to zero replicas must error")
	}
	if _, err := cl.SetActiveReplicas(4); err == nil {
		t.Error("scaling past the booted slot count must error")
	}
	if stats, err := cl.SetActiveReplicas(1); err != nil || stats != nil {
		t.Errorf("no-op resize = (%v, %v), want (nil, nil)", stats, err)
	}

	// Parked slots are invisible to health tracking: no probes are spent
	// on them, so the snapshot books no activity at the parked indices.
	// (That parked replicas never serve or hedge is pinned by the
	// rotation tests in internal/replication.)
	if res := rep.RunSerial(workload.NewGenerator(cfg, 3).GenerateBatch(4)); res.Failed() > 0 {
		t.Fatal(res.Errors[0])
	}
	for _, snap := range cl.HealthSnapshots() {
		for idx := 1; idx < 3; idx++ {
			r := snap.Replicas[idx]
			if r.Probes != 0 || r.Successes != 0 || r.Failures != 0 {
				t.Errorf("parked replica %d saw traffic: %+v", idx, r)
			}
		}
	}
}
