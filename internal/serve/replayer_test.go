package serve

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/trace"
	"repro/internal/workload"
)

// fakeMain serves "rank" by echoing the right number of scores, with a
// configurable delay and failure injection — enough to exercise the
// replayer without booting a model.
type fakeMain struct {
	delay    time.Duration
	failWhen func(id uint64) bool
}

func (f *fakeMain) Handle(ctx trace.Context, method string, body []byte) ([]byte, error) {
	if method != "rank" {
		return nil, errors.New("bad method")
	}
	req, err := core.DecodeRankingRequest(body)
	if err != nil {
		return nil, err
	}
	if f.failWhen != nil && f.failWhen(req.ID) {
		return nil, errors.New("injected failure")
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	return core.EncodeRankingResponse(&core.RankingResponse{Scores: make([]float32, req.Items)}), nil
}

func startFake(t *testing.T, h rpc.Handler) *rpc.Client {
	t.Helper()
	srv, err := rpc.NewServer("127.0.0.1:0", h, rpc.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := rpc.Dial(srv.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

func smallRequests(n int) []*workload.Request {
	cfg := model.DRM3()
	for i := range cfg.Tables {
		cfg.Tables[i].Rows = 16
		cfg.Tables[i].PoolingFactor = 1
	}
	cfg.MeanItems = 2
	return workload.NewGenerator(cfg, 3).GenerateBatch(n)
}

func TestRunSerial(t *testing.T) {
	client := startFake(t, &fakeMain{})
	res := NewReplayer(client).RunSerial(smallRequests(5))
	if res.Sent != 5 || res.Failed() != 0 || len(res.ClientE2E) != 5 {
		t.Fatalf("result = %+v", res)
	}
	for _, d := range res.ClientE2E {
		if d <= 0 {
			t.Error("non-positive E2E")
		}
	}
}

func TestRunSerialCollectsErrors(t *testing.T) {
	client := startFake(t, &fakeMain{failWhen: func(id uint64) bool { return id%2 == 0 }})
	res := NewReplayer(client).RunSerial(smallRequests(4))
	if res.Failed() != 2 {
		t.Fatalf("failed = %d, want 2", res.Failed())
	}
	if len(res.ClientE2E) != 2 {
		t.Fatalf("successes = %d, want 2", len(res.ClientE2E))
	}
}

func TestRunOpenLoopPacesAndCompletes(t *testing.T) {
	client := startFake(t, &fakeMain{delay: 5 * time.Millisecond})
	start := time.Now()
	// 8 requests at 200 QPS: arrivals span ~35ms; responses overlap.
	res := NewReplayer(client).RunOpenLoop(smallRequests(8), 200)
	elapsed := time.Since(start)
	if res.Sent != 8 || res.Failed() != 0 {
		t.Fatalf("result = %+v", res)
	}
	// Open loop must be faster than serial (8 × 5ms = 40ms + arrivals).
	if elapsed > 300*time.Millisecond {
		t.Errorf("open loop took %v; pacing broken?", elapsed)
	}
}

func TestRunOpenLoopZeroQPSFallsBackToSerial(t *testing.T) {
	client := startFake(t, &fakeMain{})
	res := NewReplayer(client).RunOpenLoop(smallRequests(3), 0)
	if res.Sent != 3 || res.Failed() != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestScoreCountValidation(t *testing.T) {
	// A server returning the wrong score count must surface as an error.
	bad := rpc.HandlerFunc(func(ctx trace.Context, method string, body []byte) ([]byte, error) {
		return core.EncodeRankingResponse(&core.RankingResponse{Scores: []float32{1}}), nil
	})
	client := startFake(t, bad)
	reqs := smallRequests(1)
	if reqs[0].Items == 1 {
		reqs[0].Items = 2 // force mismatch regardless of generator draw
	}
	res := NewReplayer(client).RunSerial(reqs[:1])
	if res.Failed() != 1 {
		t.Fatalf("score-count mismatch not detected: %+v", res)
	}
}

func TestIsFallback(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&rpc.RemoteError{Msg: "shed: queue full (64 deep)"}, true},
		{&rpc.RemoteError{Msg: rpc.OverloadMsgPrefix + " 9 in flight"}, true},
		{&rpc.RemoteError{Msg: "core: table 3 unserved"}, false},
		{errors.New("shed: not a remote error"), false},
		{nil, false},
	}
	for _, c := range cases {
		if got := IsFallback(c.err); got != c.want {
			t.Errorf("IsFallback(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestReplayerBooksFallbacksSeparately(t *testing.T) {
	// A shed response is a fallback, not a hard failure.
	shedding := rpc.HandlerFunc(func(ctx trace.Context, method string, body []byte) ([]byte, error) {
		req, err := core.DecodeRankingRequest(body)
		if err != nil {
			return nil, err
		}
		if req.ID%2 == 0 {
			return nil, errors.New("shed: request dropped for SLA fallback")
		}
		return core.EncodeRankingResponse(&core.RankingResponse{Scores: make([]float32, req.Items)}), nil
	})
	client := startFake(t, shedding)
	res := NewReplayer(client).RunSerial(smallRequests(6))
	if res.Failed() != 0 {
		t.Fatalf("sheds booked as failures: %v", res.Errors)
	}
	if res.Fallbacks != 3 || len(res.ClientE2E) != 3 || res.Sent != 6 {
		t.Fatalf("result = %+v", res)
	}
}

func TestReplayerInstrument(t *testing.T) {
	shedding := rpc.HandlerFunc(func(ctx trace.Context, method string, body []byte) ([]byte, error) {
		req, err := core.DecodeRankingRequest(body)
		if err != nil {
			return nil, err
		}
		if req.ID%3 == 0 {
			return nil, errors.New("shed: request dropped for SLA fallback")
		}
		return core.EncodeRankingResponse(&core.RankingResponse{Scores: make([]float32, req.Items)}), nil
	})
	client := startFake(t, shedding)
	reg := obs.NewRegistry()
	rp := NewReplayer(client)
	rp.Instrument(reg)
	res := rp.RunSerial(smallRequests(6))
	if res.Failed() != 0 {
		t.Fatalf("unexpected failures: %v", res.Errors)
	}
	snap := reg.Snapshot()
	h, ok := snap.Hist("client.e2e_ns")
	if !ok || h.Count != 6 {
		t.Fatalf("client.e2e_ns count = %d (present %v), want 6", h.Count, ok)
	}
	if got := snap.Counter("client.fallbacks"); got != int64(res.Fallbacks) || got == 0 {
		t.Fatalf("client.fallbacks = %d, want %d (> 0)", got, res.Fallbacks)
	}

	// Uninstrumented and discard-instrumented replayers stay nil-handled.
	plain := NewReplayer(client)
	plain.Instrument(obs.Discard())
	if r := plain.RunSerial(smallRequests(2)); r.Sent != 2 {
		t.Fatalf("discard-instrumented replay: %+v", r)
	}
}

func TestRunOpenLoopConcurrentErrors(t *testing.T) {
	// Failures landing concurrently must all be booked, exactly once.
	client := startFake(t, &fakeMain{
		delay:    2 * time.Millisecond,
		failWhen: func(id uint64) bool { return id%3 == 0 },
	})
	const n = 30
	res := NewReplayer(client).RunOpenLoop(smallRequests(n), 2000)
	if res.Sent != n {
		t.Fatalf("sent %d of %d", res.Sent, n)
	}
	wantFail := n / 3
	if res.Failed() != wantFail || len(res.ClientE2E) != n-wantFail {
		t.Fatalf("failed=%d e2e=%d, want %d/%d", res.Failed(), len(res.ClientE2E), wantFail, n-wantFail)
	}
	if res.Fallbacks != 0 {
		t.Errorf("hard failures misbooked as fallbacks: %d", res.Fallbacks)
	}
}

func TestRunOpenLoopMixedFallbacksAndErrors(t *testing.T) {
	// Concurrent mix of sheds, hard failures, and successes.
	mixed := rpc.HandlerFunc(func(ctx trace.Context, method string, body []byte) ([]byte, error) {
		req, err := core.DecodeRankingRequest(body)
		if err != nil {
			return nil, err
		}
		switch req.ID % 3 {
		case 0:
			return nil, errors.New("shed: budget exhausted")
		case 1:
			return nil, errors.New("boom")
		}
		return core.EncodeRankingResponse(&core.RankingResponse{Scores: make([]float32, req.Items)}), nil
	})
	client := startFake(t, mixed)
	const n = 30
	res := NewReplayer(client).RunOpenLoop(smallRequests(n), 3000)
	if res.Sent != n || res.Fallbacks != n/3 || res.Failed() != n/3 || len(res.ClientE2E) != n/3 {
		t.Fatalf("result = sent %d, fallbacks %d, failed %d, ok %d",
			res.Sent, res.Fallbacks, res.Failed(), len(res.ClientE2E))
	}
}
