package serve

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func resultWithLatencies(ds ...time.Duration) *Result {
	return &Result{Sent: len(ds), ClientE2E: ds}
}

func TestSLAEvaluateMet(t *testing.T) {
	res := resultWithLatencies(
		1*time.Millisecond, 2*time.Millisecond, 3*time.Millisecond, 4*time.Millisecond,
	)
	rep := SLA{Budget: 5 * time.Millisecond, TargetQuantile: 0.9}.Evaluate(res)
	if !rep.Met || rep.Violations != 0 || rep.FallbackRate != 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestSLAEvaluateViolations(t *testing.T) {
	res := resultWithLatencies(
		1*time.Millisecond, 2*time.Millisecond, 9*time.Millisecond, 12*time.Millisecond,
	)
	rep := SLA{Budget: 5 * time.Millisecond, TargetQuantile: 0.5}.Evaluate(res)
	if rep.Violations != 2 {
		t.Errorf("violations = %d, want 2", rep.Violations)
	}
	if rep.FallbackRate != 0.5 {
		t.Errorf("fallback rate = %v", rep.FallbackRate)
	}
	// P50 of {1,2,9,12} ≈ 5.5ms > 5ms budget → not met.
	if rep.Met {
		t.Error("P50 SLA should be violated")
	}
}

func TestSLAFailedRequestsAreFallbacks(t *testing.T) {
	res := resultWithLatencies(time.Millisecond)
	res.Sent = 3
	res.Errors = []error{errors.New("x"), errors.New("y")}
	rep := SLA{Budget: 5 * time.Millisecond, TargetQuantile: 0.9}.Evaluate(res)
	if rep.Violations != 2 {
		t.Errorf("violations = %d, want 2 (failures)", rep.Violations)
	}
	if rep.Met {
		t.Error("failures must break the SLA")
	}
}

func TestSLADefaultQuantile(t *testing.T) {
	res := resultWithLatencies(time.Millisecond, 2*time.Millisecond)
	rep := SLA{Budget: 3 * time.Millisecond}.Evaluate(res) // quantile unset → p99
	if !rep.Met {
		t.Errorf("default quantile report: %+v", rep)
	}
}

func TestSLAReportString(t *testing.T) {
	res := resultWithLatencies(10 * time.Millisecond)
	rep := SLA{Budget: time.Millisecond, TargetQuantile: 0.99}.Evaluate(res)
	s := rep.String()
	if !strings.Contains(s, "VIOLATED") || !strings.Contains(s, "fallback") {
		t.Errorf("report string = %q", s)
	}
	res2 := resultWithLatencies(100 * time.Microsecond)
	if s := (SLA{Budget: time.Millisecond, TargetQuantile: 0.99}).Evaluate(res2).String(); !strings.Contains(s, "MET") {
		t.Errorf("report string = %q", s)
	}
}
