package serve

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func resultWithLatencies(ds ...time.Duration) *Result {
	return &Result{Sent: len(ds), ClientE2E: ds}
}

func TestSLAEvaluateMet(t *testing.T) {
	res := resultWithLatencies(
		1*time.Millisecond, 2*time.Millisecond, 3*time.Millisecond, 4*time.Millisecond,
	)
	rep := SLA{Budget: 5 * time.Millisecond, TargetQuantile: 0.9}.Evaluate(res)
	if !rep.Met || rep.Violations != 0 || rep.FallbackRate != 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestSLAEvaluateViolations(t *testing.T) {
	res := resultWithLatencies(
		1*time.Millisecond, 2*time.Millisecond, 9*time.Millisecond, 12*time.Millisecond,
	)
	rep := SLA{Budget: 5 * time.Millisecond, TargetQuantile: 0.5}.Evaluate(res)
	if rep.Violations != 2 || rep.Late != 2 {
		t.Errorf("violations = %d late = %d, want 2/2", rep.Violations, rep.Late)
	}
	// Late-but-served requests never got the fallback.
	if rep.LateRate != 0.5 || rep.FallbackRate != 0 {
		t.Errorf("late rate = %v fallback rate = %v, want 0.5/0", rep.LateRate, rep.FallbackRate)
	}
	// P50 of {1,2,9,12} ≈ 5.5ms > 5ms budget → not met.
	if rep.Met {
		t.Error("P50 SLA should be violated")
	}
}

func TestSLAFailedRequestsAreFallbacks(t *testing.T) {
	res := resultWithLatencies(time.Millisecond)
	res.Sent = 3
	res.Errors = []error{errors.New("x"), errors.New("y")}
	rep := SLA{Budget: 5 * time.Millisecond, TargetQuantile: 0.9}.Evaluate(res)
	if rep.Violations != 2 {
		t.Errorf("violations = %d, want 2 (failures)", rep.Violations)
	}
	if rep.Met {
		t.Error("failures must break the SLA")
	}
}

func TestSLADefaultQuantile(t *testing.T) {
	res := resultWithLatencies(time.Millisecond, 2*time.Millisecond)
	rep := SLA{Budget: 3 * time.Millisecond}.Evaluate(res) // quantile unset → p99
	if !rep.Met {
		t.Errorf("default quantile report: %+v", rep)
	}
}

func TestSLAReportString(t *testing.T) {
	res := resultWithLatencies(10 * time.Millisecond)
	rep := SLA{Budget: time.Millisecond, TargetQuantile: 0.99}.Evaluate(res)
	s := rep.String()
	if !strings.Contains(s, "VIOLATED") || !strings.Contains(s, "fallback") {
		t.Errorf("report string = %q", s)
	}
	res2 := resultWithLatencies(100 * time.Microsecond)
	if s := (SLA{Budget: time.Millisecond, TargetQuantile: 0.99}).Evaluate(res2).String(); !strings.Contains(s, "MET") {
		t.Errorf("report string = %q", s)
	}
}

func TestSLAEvaluateEmptyResult(t *testing.T) {
	// No traffic: vacuously met, and no NaN from the 0/0 rate.
	rep := SLA{Budget: time.Millisecond, TargetQuantile: 0.99}.Evaluate(&Result{})
	if !rep.Met || rep.Violations != 0 || rep.FallbackRate != 0 || rep.Total != 0 {
		t.Errorf("empty report = %+v", rep)
	}
	if rep.AchievedQuantileLatency != 0 {
		t.Errorf("achieved latency on empty sample = %v", rep.AchievedQuantileLatency)
	}
}

func TestSLAEvaluateAllFailed(t *testing.T) {
	res := &Result{Sent: 3, Errors: []error{errors.New("a"), errors.New("b"), errors.New("c")}}
	rep := SLA{Budget: time.Millisecond, TargetQuantile: 0.9}.Evaluate(res)
	if rep.Met {
		t.Error("all-failed run cannot meet the SLA")
	}
	if rep.Violations != 3 || rep.FallbackRate != 1 {
		t.Errorf("report = %+v", rep)
	}
}

func TestSLAQuantileClamping(t *testing.T) {
	// Out-of-range target quantiles clamp to P99.
	res := resultWithLatencies(time.Millisecond, 2*time.Millisecond, 30*time.Millisecond)
	for _, q := range []float64{-1, 0, 1.5} {
		rep := SLA{Budget: 50 * time.Millisecond, TargetQuantile: q}.Evaluate(res)
		// P99 of {1,2,30}ms is near the max; budget comfortably above it.
		if rep.AchievedQuantileLatency < 20*time.Millisecond {
			t.Errorf("q=%v: achieved %v, expected a P99-like value", q, rep.AchievedQuantileLatency)
		}
	}
}

func TestSLAFallbacksWithinAllowance(t *testing.T) {
	// Deliberate sheds are tolerated up to the quantile's allowance: 1 of
	// 10 at a P50 SLA is fine, 4 of 10 is not. Hard failures never are.
	fast := make([]time.Duration, 9)
	for i := range fast {
		fast[i] = time.Millisecond
	}
	res := &Result{Sent: 10, ClientE2E: fast, Fallbacks: 1}
	rep := SLA{Budget: 5 * time.Millisecond, TargetQuantile: 0.5}.Evaluate(res)
	if !rep.Met || rep.Dropped != 1 || rep.Violations != 1 {
		t.Errorf("within-allowance report = %+v", rep)
	}

	res = &Result{Sent: 10, ClientE2E: fast[:6], Fallbacks: 4}
	if rep := (SLA{Budget: 5 * time.Millisecond, TargetQuantile: 0.9}).Evaluate(res); rep.Met {
		t.Errorf("40%% sheds at a P90 SLA must violate: %+v", rep)
	}

	res = &Result{Sent: 10, ClientE2E: fast, Errors: []error{errors.New("x")}}
	if rep := (SLA{Budget: 5 * time.Millisecond, TargetQuantile: 0.5}).Evaluate(res); rep.Met {
		t.Errorf("hard failures must always violate: %+v", rep)
	}
}

// TestSLALateOnlyTrafficIsNotFallback is the fallback-accounting
// regression: FallbackRate is documented as the fraction of requests
// that received the degraded fallback, so late-but-served traffic must
// book under LateRate, not FallbackRate (the pre-fix code computed
// FallbackRate from Violations, which mixes the two).
func TestSLALateOnlyTrafficIsNotFallback(t *testing.T) {
	ds := make([]time.Duration, 10)
	for i := range ds {
		ds[i] = time.Millisecond
	}
	ds[9] = 10 * time.Millisecond // one late, nothing shed, nothing failed
	rep := SLA{Budget: 5 * time.Millisecond, TargetQuantile: 0.5}.Evaluate(resultWithLatencies(ds...))
	if rep.FallbackRate != 0 {
		t.Errorf("fallback rate = %v on late-served-only traffic, want 0", rep.FallbackRate)
	}
	if rep.LateRate != 0.1 || rep.Late != 1 || rep.Dropped != 0 {
		t.Errorf("late = %d (rate %v), dropped = %d; want 1 (0.1), 0", rep.Late, rep.LateRate, rep.Dropped)
	}
	if !rep.Met {
		t.Errorf("P50 well under budget with no fallbacks must be met: %+v", rep)
	}
}

// TestSLALatenessNotDoubleCounted pins the Met flip: one in-allowance
// shed plus one late-but-served request. Lateness is judged by the
// achieved quantile (which passes); only the real shed counts against
// the allowance — the pre-fix code charged the late request against the
// shed allowance too and wrongly violated the SLA.
func TestSLALatenessNotDoubleCounted(t *testing.T) {
	served := make([]time.Duration, 9)
	for i := range served {
		served[i] = time.Millisecond
	}
	served[8] = 6 * time.Millisecond // late, but P90 of served ≈ 2ms
	res := &Result{Sent: 10, ClientE2E: served, Fallbacks: 1}
	rep := SLA{Budget: 5 * time.Millisecond, TargetQuantile: 0.9}.Evaluate(res)
	if rep.AchievedQuantileLatency > 5*time.Millisecond {
		t.Fatalf("achieved P90 = %v, test premise broken", rep.AchievedQuantileLatency)
	}
	if rep.FallbackRate != 0.1 || rep.LateRate != 0.1 {
		t.Errorf("fallback rate = %v late rate = %v, want 0.1/0.1", rep.FallbackRate, rep.LateRate)
	}
	if rep.Violations != 2 {
		t.Errorf("violations = %d, want 2 (1 shed + 1 late)", rep.Violations)
	}
	if !rep.Met {
		t.Errorf("shed within allowance and quantile within budget must meet the SLA: %+v", rep)
	}
}
