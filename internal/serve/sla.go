package serve

import (
	"fmt"
	"time"

	"repro/internal/stats"
)

// SLA captures a serving tier's latency agreement (Section II: "In order
// to provide a satisfactory user experience, recommendation results are
// expected within a timed window... If SLA targets cannot be satisfied,
// the inference request is dropped in favor of a potentially lower
// quality recommendation result").
type SLA struct {
	// Budget is the per-request latency bound.
	Budget time.Duration
	// TargetQuantile is the fraction of requests that must meet Budget
	// (e.g. 0.99 for a P99 SLA).
	TargetQuantile float64
}

// Report evaluates a replay result against an SLA.
type Report struct {
	SLA        SLA
	Total      int
	Violations int
	// Dropped is the subset of Violations the serving side shed
	// deliberately (admission control / overload), each answered with the
	// degraded fallback instead of a late result.
	Dropped int
	// AchievedQuantileLatency is the latency at the SLA's target quantile
	// among requests that were actually served.
	AchievedQuantileLatency time.Duration
	// Met reports whether the target quantile landed within budget, no
	// request hard-failed, and the shed fraction stayed inside the
	// quantile's allowance.
	Met bool
	// FallbackRate is the fraction of user requests that would have
	// received the degraded fallback recommendation.
	FallbackRate float64
}

// Evaluate scores client-observed latencies against the SLA. Failed and
// deliberately shed requests both count as violations — either way the
// user got the fallback — but only hard failures disqualify the SLA
// outright; sheds are tolerated up to the target quantile's allowance
// (a P99 SLA affords 1% fallbacks).
func (s SLA) Evaluate(res *Result) Report {
	rep := Report{SLA: s, Total: res.Sent, Dropped: res.Fallbacks}
	for _, d := range res.ClientE2E {
		if d > s.Budget {
			rep.Violations++
		}
	}
	rep.Violations += res.Failed() + res.Fallbacks
	sample := stats.NewDurationSample(res.ClientE2E)
	q := s.TargetQuantile
	if q <= 0 || q > 1 {
		q = 0.99
	}
	rep.AchievedQuantileLatency = time.Duration(sample.Quantile(q) * float64(time.Second))
	if res.Sent > 0 {
		rep.FallbackRate = float64(rep.Violations) / float64(res.Sent)
	}
	rep.Met = rep.AchievedQuantileLatency <= s.Budget &&
		res.Failed() == 0 &&
		rep.FallbackRate <= 1-q
	return rep
}

// String renders the report in one line.
func (r Report) String() string {
	status := "MET"
	if !r.Met {
		status = "VIOLATED"
	}
	return fmt.Sprintf("SLA %v @ p%.0f: %s (achieved %v, %d/%d fallbacks (%d shed), %.1f%% fallback rate)",
		r.SLA.Budget, r.SLA.TargetQuantile*100, status,
		r.AchievedQuantileLatency.Round(time.Microsecond), r.Violations, r.Total, r.Dropped, 100*r.FallbackRate)
}
