package serve

import (
	"fmt"
	"time"

	"repro/internal/stats"
)

// SLA captures a serving tier's latency agreement (Section II: "In order
// to provide a satisfactory user experience, recommendation results are
// expected within a timed window... If SLA targets cannot be satisfied,
// the inference request is dropped in favor of a potentially lower
// quality recommendation result").
type SLA struct {
	// Budget is the per-request latency bound.
	Budget time.Duration
	// TargetQuantile is the fraction of requests that must meet Budget
	// (e.g. 0.99 for a P99 SLA).
	TargetQuantile float64
}

// Report evaluates a replay result against an SLA.
type Report struct {
	SLA   SLA
	Total int
	// Violations counts every request that fell short of the agreement:
	// served late, shed to the fallback, or hard-failed.
	Violations int
	// Late is the subset of Violations that were served, just over
	// budget. Lateness is judged by AchievedQuantileLatency, never by the
	// shed allowance — a late request did not receive the fallback.
	Late int
	// Dropped is the subset of Violations the serving side shed
	// deliberately (admission control / overload), each answered with the
	// degraded fallback instead of a late result.
	Dropped int
	// AchievedQuantileLatency is the latency at the SLA's target quantile
	// among requests that were actually served.
	AchievedQuantileLatency time.Duration
	// Met reports whether the target quantile landed within budget, no
	// request hard-failed, and the fallback fraction stayed inside the
	// quantile's allowance.
	Met bool
	// FallbackRate is the fraction of user requests that actually
	// received the degraded fallback recommendation: deliberate sheds
	// plus hard failures. Late-but-served requests are booked under
	// LateRate instead.
	FallbackRate float64
	// LateRate is the fraction of user requests served over budget.
	LateRate float64
}

// Evaluate scores client-observed latencies against the SLA. Failed and
// deliberately shed requests both count as fallbacks — either way the
// user got the degraded result — but only hard failures disqualify the
// SLA outright; sheds are tolerated up to the target quantile's
// allowance (a P99 SLA affords 1% fallbacks). Late-but-served requests
// are judged once, through the achieved quantile: counting them against
// the shed allowance too would double-penalize lateness.
func (s SLA) Evaluate(res *Result) Report {
	rep := Report{SLA: s, Total: res.Sent, Dropped: res.Fallbacks}
	for _, d := range res.ClientE2E {
		if d > s.Budget {
			rep.Late++
		}
	}
	fallbacks := res.Failed() + res.Fallbacks
	rep.Violations = rep.Late + fallbacks
	sample := stats.NewDurationSample(res.ClientE2E)
	q := s.TargetQuantile
	if q <= 0 || q > 1 {
		q = 0.99
	}
	rep.AchievedQuantileLatency = time.Duration(sample.Quantile(q) * float64(time.Second))
	if res.Sent > 0 {
		rep.FallbackRate = float64(fallbacks) / float64(res.Sent)
		rep.LateRate = float64(rep.Late) / float64(res.Sent)
	}
	// The epsilon keeps the documented boundary inclusive: a P90 SLA
	// affords exactly 10% fallbacks, but 1-0.9 rounds just below 0.1 in
	// float64.
	rep.Met = rep.AchievedQuantileLatency <= s.Budget &&
		res.Failed() == 0 &&
		rep.FallbackRate <= (1-q)+1e-9
	return rep
}

// String renders the report in one line.
func (r Report) String() string {
	status := "MET"
	if !r.Met {
		status = "VIOLATED"
	}
	return fmt.Sprintf("SLA %v @ p%.0f: %s (achieved %v, %d/%d violations (%d shed, %d late), %.1f%% fallback rate, %.1f%% late)",
		r.SLA.Budget, r.SLA.TargetQuantile*100, status,
		r.AchievedQuantileLatency.Round(time.Microsecond), r.Violations, r.Total, r.Dropped, r.Late,
		100*r.FallbackRate, 100*r.LateRate)
}
