// Package serve implements the request replayer and measurement harness:
// the analogue of the paper's "production replayer [that] pre-processed
// and cached the requests before sending them to the inference servers"
// (Section V-B). Two modes match the paper's two regimes: serial blocking
// requests (Section VI, isolating per-request overheads) and open-loop
// arrivals at a target QPS (Section VII-A, the data-center regime).
package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Replayer drives pre-generated requests at a main shard.
type Replayer struct {
	client *rpc.Client
	ids    trace.IDAllocator
	method string

	// Optional obs handles (nil no-ops): the client's vantage point on
	// the deployment, alongside the server-side stage metrics.
	e2e       *obs.Histogram
	fallbacks *obs.Counter
}

// NewReplayer wraps a connected client to the main shard.
func NewReplayer(client *rpc.Client) *Replayer {
	return &Replayer{client: client, method: core.RankMethod}
}

// NewReplayerFor wraps a connected client to a co-serving front door,
// addressing every request at one hosted model ("rank@<model>"; an
// empty model is the plain single-model method).
func NewReplayerFor(client *rpc.Client, model string) *Replayer {
	return &Replayer{client: client, method: core.RankMethodFor(model)}
}

// Instrument folds every Send into reg: client.e2e_ns takes the
// client-observed round-trip latency, client.fallbacks counts shed
// responses. With a nil or discarding registry the handles are nil and
// the replay path is untouched.
func (rp *Replayer) Instrument(reg *obs.Registry) {
	rp.e2e = reg.Histogram("client.e2e_ns")
	rp.fallbacks = reg.Counter("client.fallbacks")
}

// Result summarizes one replay run from the client's vantage point.
// Component-level attributions come from the trace collector, not from
// here; client-observed E2E is kept for sanity checks.
type Result struct {
	Sent      int
	Errors    []error
	ClientE2E []time.Duration
	// Fallbacks counts requests the serving side deliberately shed — the
	// paper's "dropped in favor of a potentially lower quality
	// recommendation result". They are intentional quality degradation
	// under load, not hard failures, and are booked separately.
	Fallbacks int
}

// Failed returns the number of failed requests (fallbacks excluded).
func (r *Result) Failed() int { return len(r.Errors) }

// IsFallback reports whether err is a deliberate load-shed rejection —
// a frontend shed (rpc.ShedMsgPrefix) or a transport overload
// rejection — as opposed to a hard failure.
func IsFallback(err error) bool {
	return rpc.IsOverload(err) || rpc.IsShed(err)
}

// record books one response into the result (caller holds any lock).
func (r *Result) record(d time.Duration, err error) {
	r.Sent++
	switch {
	case err == nil:
		r.ClientE2E = append(r.ClientE2E, d)
	case IsFallback(err):
		r.Fallbacks++
	default:
		r.Errors = append(r.Errors, err)
	}
}

// Send issues one request, waits for its response, and returns the
// scores — the building block for callers that compare outputs across
// deployments (the resharding identity check) on top of timing.
func (rp *Replayer) Send(req *workload.Request) ([]float32, time.Duration, error) {
	body := core.EncodeRankingRequest(core.FromWorkload(req))
	start := time.Now()
	resp, err := rp.client.CallSync(&rpc.Request{
		Method:  rp.method,
		TraceID: rp.ids.NewTraceID(),
		CallID:  req.ID,
		Body:    body,
	})
	elapsed := time.Since(start)
	rp.e2e.Observe(int64(elapsed))
	if err != nil {
		if IsFallback(err) {
			rp.fallbacks.Inc()
		}
		return nil, elapsed, err
	}
	rr, err := core.DecodeRankingResponse(resp.Body)
	if err != nil {
		return nil, elapsed, err
	}
	if len(rr.Scores) != req.Items {
		return nil, elapsed, fmt.Errorf("serve: request %d returned %d scores for %d items", req.ID, len(rr.Scores), req.Items)
	}
	return rr.Scores, elapsed, nil
}

// send issues one request and waits for its response.
func (rp *Replayer) send(req *workload.Request) (time.Duration, error) {
	_, elapsed, err := rp.Send(req)
	return elapsed, err
}

// RunSerial replays requests one at a time, blocking on each response —
// the paper's per-request overhead methodology ("requests were sent
// serially, to isolate inherent overheads").
func (rp *Replayer) RunSerial(reqs []*workload.Request) *Result {
	res := &Result{}
	for _, req := range reqs {
		d, err := rp.send(req)
		res.record(d, err)
	}
	return res
}

// RunSerialScored replays requests serially like RunSerial, also
// returning each request's scores (nil for failed or shed requests) in
// request order — the identity-checking mode the resharding experiment
// compares against a control deployment.
func (rp *Replayer) RunSerialScored(reqs []*workload.Request) ([][]float32, *Result) {
	res := &Result{}
	scores := make([][]float32, len(reqs))
	for i, req := range reqs {
		s, d, err := rp.Send(req)
		if err == nil {
			scores[i] = s
		}
		res.record(d, err)
	}
	return scores, res
}

// RunOpenLoop replays requests with uniform inter-arrival spacing at the
// target QPS regardless of response completion (an open-loop load model,
// as a production replayer sending live traffic behaves). It waits for
// all responses before returning.
func (rp *Replayer) RunOpenLoop(reqs []*workload.Request, qps float64) *Result {
	if qps <= 0 {
		return rp.RunSerial(reqs)
	}
	interval := time.Duration(float64(time.Second) / qps)
	res := &Result{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for i, req := range reqs {
		// Pace against the absolute schedule so response stalls do not
		// slow the arrival process.
		if wait := time.Duration(i)*interval - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		wg.Add(1)
		go func(req *workload.Request) {
			defer wg.Done()
			d, err := rp.send(req)
			mu.Lock()
			defer mu.Unlock()
			res.record(d, err)
		}(req)
	}
	wg.Wait()
	return res
}
