// Distributed serving: boot a complete 8-shard load-balanced DRM1
// deployment on loopback TCP (with simulated data-center link latency),
// replay a request trace through the RPC front door, and print the
// cross-layer latency attribution the paper's tracing framework produces.
//
//	go run ./examples/distributed_serving
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/sharding"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	cfg := model.DRM1()
	m := model.Build(cfg)
	pooling := workload.EstimatePooling(workload.NewGenerator(cfg, 991), 200)
	plan, err := sharding.LoadBalanced(&cfg, 8, pooling)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("booting %s under %s: main shard + %d sparse shards...\n", cfg.Name, plan.Name(), plan.NumShards)
	cl, err := cluster.Boot(m, plan, cluster.Options{Seed: 7, ClockSkew: true})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	fmt.Printf("registry: %v\n", cl.Registry.Services())

	client, err := cl.DialMain()
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	gen := workload.NewGenerator(cfg, 12345)
	rep := serve.NewReplayer(client)
	if res := rep.RunSerial(gen.GenerateBatch(5)); res.Failed() > 0 {
		log.Fatal(res.Errors[0])
	}
	cl.ResetTraces()

	const n = 40
	start := time.Now()
	res := rep.RunSerial(gen.GenerateBatch(n))
	if res.Failed() > 0 {
		log.Fatal(res.Errors[0])
	}
	fmt.Printf("replayed %d requests serially in %v\n", n, time.Since(start).Round(time.Millisecond))

	bs := trace.Analyze(cl.Collector.Gather(), "main")
	e2e := stats.NewSample(trace.ComponentSeconds(bs, trace.CompE2E))
	fmt.Printf("E2E latency: p50=%.2fms p90=%.2fms p99=%.2fms\n", e2e.P50()*1e3, e2e.P90()*1e3, e2e.P99()*1e3)

	// Median per-component attribution, the paper's Fig. 8 view.
	comp := func(c trace.Component) float64 {
		return stats.NewSample(trace.ComponentSeconds(bs, c)).P50() * 1e3
	}
	fmt.Println("\nmain-shard latency stack (P50, ms):")
	fmt.Printf("  dense operators        %7.3f\n", comp(trace.CompDenseOps))
	fmt.Printf("  embedded portion       %7.3f  <- time waiting on sparse shards\n", comp(trace.CompEmbedded))
	fmt.Printf("  rpc ser/de             %7.3f\n", comp(trace.CompMainSerDe))
	fmt.Printf("  rpc service            %7.3f\n", comp(trace.CompMainService))
	fmt.Printf("  net overhead           %7.3f\n", comp(trace.CompMainNetOverhead))

	fmt.Println("\nbounding sparse-shard stack (P50, ms):")
	fmt.Printf("  network latency        %7.3f  <- dominates, as the paper finds\n", comp(trace.CompBoundNetwork))
	fmt.Printf("  sparse operators       %7.3f\n", comp(trace.CompBoundSparseOps))
	fmt.Printf("  rpc ser/de             %7.3f\n", comp(trace.CompBoundSerDe))
	fmt.Printf("  rpc service            %7.3f\n", comp(trace.CompBoundService))

	var rpcs int
	for i := range bs {
		rpcs += bs[i].RPCCalls
	}
	fmt.Printf("\nRPC fan-out: %.1f calls per request across %d shards\n", float64(rpcs)/float64(len(bs)), plan.NumShards)
}
