// Compression: apply the production recipe of Section VII-D — row-wise
// linear quantization (8-bit, 4-bit for large tables) plus magnitude
// pruning — to DRM1, and show why compression alone cannot substitute for
// distributed serving.
//
//	go run ./examples/compression
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/sharding"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	cfg := model.DRM1()
	m := model.Build(cfg)

	// "All tables were row-wise linear quantized to at least 8-bits, and
	// sufficiently large tables were quantized to 4-bits. Tables were
	// manually pruned ... based on a threshold magnitude."
	const bigTableThreshold = 1024 * 1024 // = 1 GiB at paper scale
	compressed := m.Compress(bigTableThreshold, 0.001)

	ratio := float64(m.TotalBytes()) / float64(compressed.TotalBytes())
	fmt.Printf("%s uncompressed: %.1f MiB\n", cfg.Name, float64(m.TotalBytes())/(1<<20))
	fmt.Printf("%s quantized+pruned: %.1f MiB (%.2fx smaller; paper: 5.56x)\n",
		cfg.Name, float64(compressed.TotalBytes())/(1<<20), ratio)

	// Accuracy effect: compare scores between the two builds.
	rec := trace.NewRecorder("main", 1<<16)
	engU, err := core.NewEngine(m, sharding.Singular(&cfg), core.EngineConfig{Recorder: rec})
	if err != nil {
		log.Fatal(err)
	}
	engC, err := core.NewEngine(compressed, sharding.Singular(&cfg), core.EngineConfig{Recorder: rec})
	if err != nil {
		log.Fatal(err)
	}
	gen := workload.NewGenerator(cfg, 7)
	var maxDiff float64
	for i := 0; i < 5; i++ {
		req := core.FromWorkload(gen.Next())
		su, err := engU.Execute(trace.Context{TraceID: uint64(2*i + 1)}, req)
		if err != nil {
			log.Fatal(err)
		}
		sc, err := engC.Execute(trace.Context{TraceID: uint64(2*i + 2)}, req)
		if err != nil {
			log.Fatal(err)
		}
		for j := range su {
			if d := math.Abs(float64(su[j] - sc[j])); d > maxDiff {
				maxDiff = d
			}
		}
	}
	fmt.Printf("max score deviation across 5 requests: %.5f (quantization noise)\n", maxDiff)

	// The paper's conclusion: even compressed, large models do not fit on
	// one, two, or four commodity web servers. Undo the reproduction's
	// 1024x scaling to state it at data-center size, remembering the
	// paper's DRM1 was itself scaled down to fit a 256GB box ("the
	// original data-center scale models are many times larger").
	small := platform.SCSmall()
	usable := float64(small.MemoryBytes) * 0.8 // leave room for the stack
	needed := float64(compressed.SparseTableBytes())
	fmt.Printf("\ncompressed sparse parameters: %.1f MiB scaled = %.1f GiB at paper scale\n",
		needed/(1<<20), needed*1024/(1<<30))
	fmt.Printf("usable DRAM per commodity server: %.1f MiB scaled (~%.0f GB at paper scale)\n",
		usable/(1<<20), usable*1024/(1<<30))
	fmt.Printf("=> even compressed, the (already down-scaled) model fills %.1f commodity servers;\n", needed/usable)
	fmt.Println("   production models are many times larger: compression complements, not replaces, distribution")
}
