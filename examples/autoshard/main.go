// Autoshard: the paper's future-work loop closed end to end — profile a
// model, feed the measurements to the auto-sharding advisor, deploy its
// chosen plan, and verify the SLA it was asked to meet.
//
//	go run ./examples/autoshard
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/sharding"
	"repro/internal/workload"
)

func main() {
	cfg := model.DRM1()
	m := model.Build(cfg)

	// 1. Profile: the advisor needs per-table pooling estimates (the
	// paper's sampled-request methodology).
	pooling := workload.EstimatePooling(workload.NewGenerator(cfg, 991), 200)

	// 2. Advise under constraints: shards must fit an SC-Small-sized
	// memory budget, and compute overhead is weighted against latency.
	cons := sharding.Constraints{
		MaxShards:     8,
		MaxShardBytes: 64 << 20, // a scaled SC-Small's usable DRAM
		ComputeWeight: 2,
	}
	candidates, err := sharding.AutoShard(&cfg, pooling, sharding.DefaultCostModel(), cons)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("auto-sharding advisor ranking (top 6):")
	fmt.Print(sharding.RenderCandidates(candidates, 6))
	best := candidates[0]
	if !best.Feasible {
		log.Fatalf("no feasible plan: %s", best.Reason)
	}
	fmt.Printf("\nchosen: %s (est. +%v latency, +%v compute per request)\n\n",
		best.Plan.Name(), best.EstLatencyOverhead.Round(time.Microsecond),
		best.EstComputeOverhead.Round(time.Microsecond))

	// 3. Deploy the chosen plan and replay traffic.
	cl, err := cluster.Boot(m, best.Plan, cluster.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	client, err := cl.DialMain()
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	gen := workload.NewGenerator(cfg, 12345)
	rep := serve.NewReplayer(client)
	if res := rep.RunSerial(gen.GenerateBatch(5)); res.Failed() > 0 {
		log.Fatal(res.Errors[0])
	}
	res := rep.RunSerial(gen.GenerateBatch(40))
	if res.Failed() > 0 {
		log.Fatal(res.Errors[0])
	}

	// 4. Evaluate the serving SLA (Section II's contract).
	sla := serve.SLA{Budget: 40 * time.Millisecond, TargetQuantile: 0.99}
	fmt.Println(sla.Evaluate(res))
}
