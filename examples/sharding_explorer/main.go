// Sharding explorer: partition each model under every strategy the paper
// evaluates and compare the placements — per-shard capacity, table
// counts, estimated pooling work, and balance spreads (Table II).
//
//	go run ./examples/sharding_explorer
package main

import (
	"fmt"
	"log"

	"repro/internal/model"
	"repro/internal/sharding"
	"repro/internal/workload"
)

func main() {
	for _, name := range model.Names() {
		cfg := model.ByName(name)

		// Pooling factors are estimated the way the paper does: sample
		// requests and count lookups per table (Section III-B2).
		pooling := workload.EstimatePooling(workload.NewGenerator(cfg, 991), 200)

		plans, err := sharding.AllConfigurations(&cfg, pooling, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(sharding.Report(&cfg, plans, pooling))

		for _, p := range plans {
			if !p.IsDistributed() || p.NumShards < 2 {
				continue
			}
			st := sharding.Balance(&cfg, p, pooling)
			fmt.Printf("  %-22s capacity spread %5.2fx   pooling spread %6.2fx\n",
				p.Name(), st.CapacitySpread, st.PoolingSpread)
		}

		// The paper's headline contrast: capacity-balanced placements can
		// be badly load-imbalanced, and NSBP trades balance for fewer RPCs.
		cb, err := sharding.CapacityBalanced(&cfg, 8)
		if err == nil {
			st := sharding.Balance(&cfg, cb, pooling)
			fmt.Printf("  -> %s cap-bal 8: shards hold equal bytes but pooling work varies %.1fx\n",
				name, st.PoolingSpread)
		}
		fmt.Println()
	}

	// DRM3's NSBP progression: the dominating table absorbs every extra
	// shard (Section V-A).
	cfg := model.DRM3()
	for _, n := range []int{2, 4, 8} {
		p, err := sharding.NSBP(&cfg, n)
		if err != nil {
			log.Fatal(err)
		}
		parts := 0
		for i := range p.Shards {
			parts += len(p.Shards[i].Parts)
		}
		fmt.Printf("DRM3 NSBP %d shards: dominating table in %d partitions, small tables grouped on %d shard(s)\n",
			n, parts, p.NumShards-parts)
	}
}
