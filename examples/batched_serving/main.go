// Batched serving: boot a distributed DRM1 deployment fronted by the
// SLA-aware scheduler — dynamic batching, admission control, and hedged
// sparse replicas — then push open-loop traffic past the deployment's
// capacity and watch it shed load into fallbacks instead of collapsing.
//
//	go run ./examples/batched_serving
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/frontend"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/sharding"
	"repro/internal/workload"
)

func main() {
	cfg := model.DRM1()
	m := model.Build(cfg)
	pooling := workload.EstimatePooling(workload.NewGenerator(cfg, 991), 200)
	plan, err := sharding.LoadBalanced(&cfg, 2, pooling)
	if err != nil {
		log.Fatal(err)
	}

	sla := serve.SLA{Budget: time.Second, TargetQuantile: 0.95}
	fmt.Printf("booting %s under %s with the SLA frontend (budget %v, 2 hedged replicas per shard)...\n",
		cfg.Name, plan.Name(), sla.Budget)
	cl, err := cluster.Boot(m, plan, cluster.Options{
		Seed: 7,
		Frontend: &frontend.Config{
			BatchWait:        5 * time.Millisecond,
			MaxBatchRequests: 16,
			MaxQueue:         64,
			Budget:           sla.Budget,
		},
		SparseReplicas: 2,
		HedgeDelay:     150 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	client, err := cl.DialMain()
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	gen := workload.NewGenerator(cfg, 12345)
	rep := serve.NewReplayer(client)
	if res := rep.RunSerial(gen.GenerateBatch(5)); res.Failed() > 0 {
		log.Fatal(res.Errors[0])
	}

	// Measure serial capacity to express the sweep in multiples of it.
	const probe = 20
	start := time.Now()
	if res := rep.RunSerial(gen.GenerateBatch(probe)); res.Failed() > 0 {
		log.Fatal(res.Errors[0])
	}
	capacity := float64(probe) / time.Since(start).Seconds()
	fmt.Printf("serial capacity ≈ %.0f QPS\n\n", capacity)

	fmt.Printf("%-10s %-12s %-12s %-10s %s\n", "load", "offered", "throughput", "reqs/batch", "SLA report")
	prev := cl.Frontend.Stats()
	for _, mult := range []float64{0.5, 1.5, 3.0} {
		qps := capacity * mult
		n := 60
		reqs := gen.GenerateBatch(n)
		t0 := time.Now()
		res := rep.RunOpenLoop(reqs, qps)
		elapsed := time.Since(t0)
		if res.Failed() > 0 {
			log.Fatalf("hard failures under load: %v", res.Errors[0])
		}
		st := cl.Frontend.Stats()
		served := st.Completed - prev.Completed
		batches := st.Batches - prev.Batches
		perBatch := 0.0
		if batches > 0 {
			perBatch = float64(st.BatchedRequests-prev.BatchedRequests) / float64(batches)
		}
		prev = st
		fmt.Printf("%-10s %-12s %-12s %-10.2f %v\n",
			fmt.Sprintf("%.1fx", mult),
			fmt.Sprintf("%.0f QPS", qps),
			fmt.Sprintf("%.0f QPS", float64(served)/elapsed.Seconds()),
			perBatch, sla.Evaluate(res))
	}

	st := cl.Frontend.Stats()
	// Total arrivals: queued requests plus admission rejections (deadline
	// sheds were already admitted, so Submitted covers them).
	arrivals := st.Submitted + st.ShedQueueFull + st.ShedBudget
	fmt.Printf("\nfrontend totals: %d arrived, %d completed, %d shed (%d queue-full, %d budget, %d deadline), max %d reqs/batch\n",
		arrivals, st.Completed, st.Sheds(), st.ShedQueueFull, st.ShedBudget, st.ShedDeadline, st.MaxBatchRequests)
	for name, h := range cl.Hedged {
		fmt.Printf("hedging %s: %d hedges issued, %d beat the primary\n", name, h.Hedges(), h.Wins())
	}
}
