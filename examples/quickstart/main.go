// Quickstart: build a scaled DLRM-like model, serve it non-distributed
// (the paper's "singular" configuration), and score one ranking request.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sharding"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	// 1. A model configuration: DRM2 is the smaller two-net model. The
	// config fully determines parameters (deterministic build).
	cfg := model.DRM2()
	fmt.Printf("model %s: %d embedding tables, %d nets, %.1f MiB sparse parameters\n",
		cfg.Name, len(cfg.Tables), len(cfg.Nets), float64(cfg.SparseBytes())/(1<<20))
	m := model.Build(cfg)

	// 2. A sharding plan. Singular = the whole model on this process.
	plan := sharding.Singular(&cfg)

	// 3. An engine executes ranking requests under the plan. The recorder
	// collects cross-layer trace spans (operator, serde, service...).
	rec := trace.NewRecorder("main", 1<<16)
	eng, err := core.NewEngine(m, plan, core.EngineConfig{Recorder: rec})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Generate a ranking request: R candidate items, dense features
	// per net, and per-table bags of raw sparse IDs.
	gen := workload.NewGenerator(cfg, 42)
	req := gen.Next()
	fmt.Printf("request #%d: %d items to rank, %d embedding lookups\n",
		req.ID, req.Items, req.TotalLookups())

	// 5. Execute: items are scored in parallel batches; each score is the
	// sigmoid click-probability head's output. (In a served deployment the
	// RPC server records the E2E request span; standalone, we record it.)
	start := rec.Now()
	scores, err := eng.Execute(trace.Context{TraceID: 1}, core.FromWorkload(req))
	if err != nil {
		log.Fatal(err)
	}
	rec.Record(trace.Span{TraceID: 1, Layer: trace.LayerRequest, Name: "rank", Start: start, Dur: rec.Now().Sub(start)})
	best, bestScore := 0, float32(-1)
	for i, s := range scores {
		if s > bestScore {
			best, bestScore = i, s
		}
	}
	fmt.Printf("scored %d items; top item #%d with p(click)=%.4f\n", len(scores), best, bestScore)

	// 6. The trace recorder saw every operator execution.
	bs := trace.Analyze(rec.Spans(), "main")
	if len(bs) == 1 {
		b := bs[0]
		fmt.Printf("operator time: dense %v, sparse (embedded) %v\n", b.DenseOps, b.EmbeddedPortion)
	}
}
