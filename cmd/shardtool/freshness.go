// Shard-file freshness subcommands: export-v2 writes the mmap-able
// persistent format, convert upgrades v1 exports in place, delta-diff
// previews the row delta a publish would stream between two shard files.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sharding"
	"repro/internal/workload"
)

// dispatchSubcommand routes shardtool <sub> invocations; it reports
// whether it handled the arguments.
func dispatchSubcommand(args []string) bool {
	if len(args) == 0 {
		return false
	}
	switch args[0] {
	case "export-v2":
		runExportV2(args[1:])
	case "convert":
		runConvert(args[1:])
	case "delta-diff":
		runDeltaDiff(args[1:])
	default:
		return false
	}
	return true
}

// runExportV2 writes every shard of a plan as a v2 file into -dir, each
// table section stored page-aligned in its cold-tier precision so a
// booting shard can mmap and serve.
func runExportV2(args []string) {
	fs := flag.NewFlagSet("shardtool export-v2", flag.ExitOnError)
	var (
		modelName = fs.String("model", "DRM1", "model: DRM1, DRM2, DRM3")
		strategy  = fs.String("strategy", "load-bal", "sharding strategy")
		shards    = fs.Int("shards", 8, "sparse shard count")
		dir       = fs.String("dir", "", "output directory for <model>.shardN files (required)")
		coldPrec  = fs.String("cold-precision", "fp32", "cold-tier storage precision: fp32, fp16, or int8")
		errBudget = fs.Float64("error-budget", 0, "max quantization error as a fraction of value scale (0 = default)")
		samples   = fs.Int("samples", 200, "requests sampled for pooling estimation")
	)
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
	if *dir == "" {
		fatal(fmt.Errorf("export-v2: -dir is required"))
	}
	cfg := model.ByName(*modelName)
	pooling := workload.EstimatePooling(workload.NewGenerator(cfg, 991), *samples)
	plan, err := buildPlan(&cfg, *strategy, *shards, pooling)
	if err != nil {
		fatal(err)
	}
	if !plan.IsDistributed() {
		fatal(fmt.Errorf("export-v2: singular plans have no shards to export"))
	}
	prec, err := sharding.ParsePrecision(*coldPrec)
	if err != nil {
		fatal(err)
	}
	var tier *sharding.TierPlan
	if prec != sharding.PrecisionFP32 {
		tier = sharding.PlanTiers(&cfg, sharding.TierOptions{ColdPrecision: prec, ErrorBudget: *errBudget})
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	m := model.Build(cfg)
	for shard := 1; shard <= plan.NumShards; shard++ {
		path := core.ShardFilePath(*dir, cfg.Name, shard)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := core.ExportShardV2(m, plan, shard, f, tier); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		st, err := os.Stat(path)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%.1f MiB)\n", path, float64(st.Size())/(1<<20))
	}
}

// runConvert upgrades a v1 shard file to v2 (fp32 sections, page-aligned
// and checksummed) so existing exports gain the mmap boot path.
func runConvert(args []string) {
	fs := flag.NewFlagSet("shardtool convert", flag.ExitOnError)
	var (
		in  = fs.String("in", "", "input shard file, v1 or v2 fp32 (required)")
		out = fs.String("out", "", "output v2 shard file (required)")
	)
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
	if *in == "" || *out == "" {
		fatal(fmt.Errorf("convert: -in and -out are required"))
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	sf, err := core.LoadShardFile(data)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := core.WriteShardFileV2(sf, f, nil); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("converted %s (shard %d, %d tables/parts) to v2 at %s\n",
		*in, sf.Shard, len(sf.Tables), *out)
}

// runDeltaDiff compares two shard files of the same shard and reports,
// per table, the rows whose served values differ — the delta set a
// publish would need to stream to move one to the other.
func runDeltaDiff(args []string) {
	fs := flag.NewFlagSet("shardtool delta-diff", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
	if fs.NArg() != 2 {
		fatal(fmt.Errorf("delta-diff: usage: shardtool delta-diff <old> <new>"))
	}
	oldSF := loadShard(fs.Arg(0))
	newSF := loadShard(fs.Arg(1))
	if oldSF.Shard != newSF.Shard {
		fmt.Printf("warning: comparing shard %d against shard %d\n", oldSF.Shard, newSF.Shard)
	}
	type key struct{ id, part int }
	oldTabs := make(map[key]core.ShardTable)
	for _, t := range oldSF.Tables {
		oldTabs[key{t.TableID, t.PartIndex}] = t
	}
	totalRows, totalChanged := 0, 0
	for _, nt := range newSF.Tables {
		k := key{nt.TableID, nt.PartIndex}
		ot, ok := oldTabs[k]
		if !ok {
			fmt.Printf("table %d part %d: only in %s (%d rows)\n", nt.TableID, nt.PartIndex, fs.Arg(1), nt.Rows)
			continue
		}
		delete(oldTabs, k)
		if ot.Rows != nt.Rows || ot.Dim != nt.Dim {
			fmt.Printf("table %d part %d: reshaped %dx%d -> %dx%d\n",
				nt.TableID, nt.PartIndex, ot.Rows, ot.Dim, nt.Rows, nt.Dim)
			continue
		}
		changed := diffRows(ot, nt)
		totalRows += nt.Rows
		totalChanged += changed
		if changed > 0 {
			fmt.Printf("table %d part %d: %d/%d rows differ (%.1f KiB fp32 delta)\n",
				nt.TableID, nt.PartIndex, changed, nt.Rows, float64(4*changed*nt.Dim)/1024)
		}
	}
	for k := range oldTabs {
		fmt.Printf("table %d part %d: only in %s\n", k.id, k.part, fs.Arg(0))
	}
	if totalChanged == 0 && len(oldTabs) == 0 {
		fmt.Printf("identical: %d rows serve the same values\n", totalRows)
	} else {
		fmt.Printf("delta: %d/%d rows differ\n", totalChanged, totalRows)
	}
}

func loadShard(path string) *core.ShardFileData {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	sf, err := core.LoadShardFile(data)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return sf
}

// diffRows counts rows whose *served* fp32 values differ bitwise —
// comparing through the lookup path, so an int8 table and a reconverted
// int8 table with identical codes count as identical.
func diffRows(a, b core.ShardTable) int {
	bufA := make([]float32, a.Dim)
	bufB := make([]float32, b.Dim)
	changed := 0
	for r := 0; r < a.Rows; r++ {
		for i := range bufA {
			bufA[i], bufB[i] = 0, 0
		}
		a.Table.AccumulateRow(bufA, r)
		b.Table.AccumulateRow(bufB, r)
		for i := range bufA {
			if math.Float32bits(bufA[i]) != math.Float32bits(bufB[i]) {
				changed++
				break
			}
		}
	}
	return changed
}
