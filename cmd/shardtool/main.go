// Command shardtool partitions a model under a chosen sharding strategy
// and prints the resulting placement — the analogue of the paper's
// "custom partitioning tool [that] employs a user-supplied configuration
// to group embedding tables ... and then serialize the model" (Section
// III-C), reporting Table II-style per-shard attributes.
//
// Usage:
//
//	shardtool -model DRM1 -strategy load-bal -shards 8
//	shardtool -model DRM1 -all        # the full Table II sweep
//	shardtool -model DRM3 -strategy NSBP -shards 4 -v   # per-shard tables
//
// Freshness subcommands (persistent v2 shard files):
//
//	shardtool export-v2 -model DRM2 -strategy NSBP -shards 4 -dir out/ -cold-precision int8
//	shardtool convert -in old.shard1 -out new.shard1
//	shardtool delta-diff old.shard1 new.shard1
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sharding"
	"repro/internal/workload"
)

func main() {
	if dispatchSubcommand(os.Args[1:]) {
		return
	}
	var (
		modelName = flag.String("model", "DRM1", "model: DRM1, DRM2, DRM3")
		strategy  = flag.String("strategy", "load-bal", "strategy: singular, 1-shard, cap-bal, load-bal, NSBP")
		shards    = flag.Int("shards", 8, "sparse shard count")
		all       = flag.Bool("all", false, "emit the full configuration sweep")
		auto      = flag.Bool("auto", false, "rank configurations with the auto-sharding advisor")
		computeW  = flag.Float64("compute-weight", 1, "auto mode: weight of compute overhead vs latency")
		capBytes  = flag.Int64("max-shard-bytes", 0, "auto mode: per-shard memory capacity (0 = unlimited)")
		samples   = flag.Int("samples", 200, "requests sampled for pooling estimation")
		verbose   = flag.Bool("v", false, "list per-shard table assignments")
		saveModel = flag.String("save-model", "", "serialize the built model to this file (paper §III-C publishing step)")
		exportPfx = flag.String("export-shards", "", "write per-shard files <prefix>.shardN for the selected plan (§III-A1 resharding)")
	)
	flag.Parse()

	valid := false
	for _, n := range model.Names() {
		if n == *modelName {
			valid = true
		}
	}
	if !valid {
		fatal(fmt.Errorf("unknown model %q (want one of %v)", *modelName, model.Names()))
	}
	cfg := model.ByName(*modelName)
	pooling := workload.EstimatePooling(workload.NewGenerator(cfg, 991), *samples)

	if *saveModel != "" {
		f, err := os.Create(*saveModel)
		if err != nil {
			fatal(err)
		}
		m := model.Build(cfg)
		if err := model.Save(f, m); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("serialized %s (%.1f MiB) to %s\n", cfg.Name, float64(m.TotalBytes())/(1<<20), *saveModel)
	}

	if *auto {
		cs, err := sharding.AutoShard(&cfg, pooling, sharding.DefaultCostModel(), sharding.Constraints{
			MaxShards: *shards, ComputeWeight: *computeW, MaxShardBytes: *capBytes,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("auto-sharding advisor for %s (cost model: %+v)\n", cfg.Name, sharding.DefaultCostModel())
		fmt.Print(sharding.RenderCandidates(cs, 12))
		return
	}

	var plans []*sharding.Plan
	if *all {
		ps, err := sharding.AllConfigurations(&cfg, pooling, false)
		if err != nil {
			fatal(err)
		}
		plans = ps
	} else {
		p, err := buildPlan(&cfg, *strategy, *shards, pooling)
		if err != nil {
			fatal(err)
		}
		plans = []*sharding.Plan{p}
	}

	if *exportPfx != "" {
		if len(plans) != 1 || !plans[0].IsDistributed() {
			fatal(fmt.Errorf("-export-shards needs a single distributed plan (not -all/singular)"))
		}
		m := model.Build(cfg)
		for shard := 1; shard <= plans[0].NumShards; shard++ {
			path := fmt.Sprintf("%s.shard%d", *exportPfx, shard)
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := core.ExportShard(m, plans[0], shard, f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}

	fmt.Print(sharding.Report(&cfg, plans, pooling))
	for _, p := range plans {
		if !p.IsDistributed() {
			continue
		}
		st := sharding.Balance(&cfg, p, pooling)
		fmt.Printf("%-22s capacity spread %.2fx, pooling spread %.2fx\n", p.Name(), st.CapacitySpread, st.PoolingSpread)
		if *verbose {
			for i := range p.Shards {
				a := &p.Shards[i]
				fmt.Printf("  shard %d (nets %v): tables %v", a.Shard, sharding.ShardNets(&cfg, a), a.Tables)
				if len(a.Parts) > 0 {
					fmt.Printf(" parts %+v", a.Parts)
				}
				fmt.Println()
			}
		}
	}
}

func buildPlan(cfg *model.Config, strategy string, n int, pooling map[int]float64) (*sharding.Plan, error) {
	switch strategy {
	case sharding.StrategySingular:
		return sharding.Singular(cfg), nil
	case sharding.StrategyOneShard, "one-shard":
		return sharding.OneShard(cfg), nil
	case sharding.StrategyCapacity:
		return sharding.CapacityBalanced(cfg, n)
	case sharding.StrategyLoad:
		return sharding.LoadBalanced(cfg, n, pooling)
	case sharding.StrategyNSBP, "nsbp":
		return sharding.NSBP(cfg, n)
	}
	return nil, fmt.Errorf("unknown strategy %q", strategy)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shardtool:", err)
	os.Exit(1)
}
