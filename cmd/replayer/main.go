// Command replayer drives ranking requests at a main shard and reports
// client-observed latency quantiles — the production replayer of Section
// V-B, pointed at a drmserve deployment.
//
// Usage:
//
//	replayer -addr 127.0.0.1:7100 -model DRM1 -n 200                 # serial
//	replayer -addr 127.0.0.1:7100 -model DRM1 -n 500 -qps 150        # open loop
//	replayer -addr 127.0.0.1:7100 -model DRM1 -tenant drm1a -n 200   # coserve tenant
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/model"
	"repro/internal/rpc"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7100", "main shard address")
		modelName = flag.String("model", "DRM1", "model the server is serving")
		tenant    = flag.String("tenant", "", "co-serving tenant to address (routes rank@<tenant> at a coserve front door; empty = the plain single-model method)")
		n         = flag.Int("n", 100, "requests to send")
		warmup    = flag.Int("warmup", 5, "warmup requests (excluded from stats)")
		qps       = flag.Float64("qps", 0, "open-loop arrival rate; 0 = serial blocking")
		seed      = flag.Int64("seed", 12345, "workload seed (must match analysis runs)")
		diurnal   = flag.Bool("diurnal", false, "modulate request sizes diurnally")
		slaBudget = flag.Duration("sla", 0, "evaluate results against this latency budget")
		slaQ      = flag.Float64("sla-quantile", 0.99, "SLA target quantile")
	)
	flag.Parse()

	client, err := rpc.Dial(*addr, nil)
	if err != nil {
		fatal(err)
	}
	defer client.Close()

	cfg := model.ByName(*modelName)
	gen := workload.NewGenerator(cfg, *seed)
	if *diurnal {
		gen.EnableDiurnal()
	}
	rep := serve.NewReplayer(client)
	if *tenant != "" {
		rep = serve.NewReplayerFor(client, *tenant)
	}
	if *warmup > 0 {
		if res := rep.RunSerial(gen.GenerateBatch(*warmup)); res.Failed() > 0 {
			fatal(fmt.Errorf("warmup failed: %v", res.Errors[0]))
		}
	}
	reqs := gen.GenerateBatch(*n)
	var res *serve.Result
	if *qps > 0 {
		res = rep.RunOpenLoop(reqs, *qps)
	} else {
		res = rep.RunSerial(reqs)
	}

	fmt.Printf("sent %d requests, %d failed, %d shed to fallbacks\n", res.Sent, res.Failed(), res.Fallbacks)
	for _, err := range res.Errors {
		fmt.Println("  error:", err)
	}
	if len(res.ClientE2E) > 0 {
		s := stats.NewDurationSample(res.ClientE2E)
		fmt.Printf("client E2E: p50=%.3fms p90=%.3fms p99=%.3fms mean=%.3fms\n",
			s.P50()*1e3, s.P90()*1e3, s.P99()*1e3, s.Mean()*1e3)
	}
	if *slaBudget > 0 {
		fmt.Println(serve.SLA{Budget: *slaBudget, TargetQuantile: *slaQ}.Evaluate(res))
	}
	if res.Failed() > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "replayer:", err)
	os.Exit(1)
}
