// Command drmserve runs one shard of a distributed recommendation
// inference deployment as a standalone process: either the main shard
// (dense layers + RPC fan-out) or one sparse shard (embedding tables).
//
// Every process derives the identical sharding plan from the same flags
// (models and pooling estimation are deterministic), so a deployment is
// just N+1 processes agreeing on -model/-strategy/-shards:
//
//	drmserve -role sparse -shard 1 -model DRM1 -strategy load-bal -shards 2 -listen 127.0.0.1:7101
//	drmserve -role sparse -shard 2 -model DRM1 -strategy load-bal -shards 2 -listen 127.0.0.1:7102
//	drmserve -role main -model DRM1 -strategy load-bal -shards 2 \
//	    -listen 127.0.0.1:7100 -peers sparse1=127.0.0.1:7101,sparse2=127.0.0.1:7102
//
// Then drive it with cmd/replayer against 127.0.0.1:7100.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/frontend"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/replication"
	"repro/internal/rpc"
	"repro/internal/sharding"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var models modelFlags
	var (
		role      = flag.String("role", "main", "shard role: main, sparse, or coserve")
		shardNum  = flag.Int("shard", 1, "sparse shard number (1-based)")
		strategy  = flag.String("strategy", "load-bal", "sharding strategy")
		shards    = flag.Int("shards", 2, "sparse shard count")
		listen    = flag.String("listen", "127.0.0.1:0", "listen address")
		modelFile = flag.String("model-file", "", "load a serialized model (from shardtool -save-model) instead of building")
		shardFile = flag.String("shard-file", "", "sparse role: serve directly from a shard file (shardtool -export-shards)")
		shardDir  = flag.String("shard-dir", "", "sparse role: serve from the v2 shard file <dir>/<model>.shardN, mmap-backed (shardtool export-v2)")
		peers     = flag.String("peers", "", "main role: comma-separated sparseN=host:port bindings; repeat a name to add hedge replicas")
		netDelay  = flag.Bool("netsim", false, "inject data-center link latency")

		// SLA-aware frontend (main role). Any of
		// -batch-wait/-batch-reqs/-max-queue/-sla enables it; all unset,
		// the main shard serves one request per call.
		batchWait = flag.Duration("batch-wait", 0, "dynamic batching window (enables the serving frontend)")
		batchReqs = flag.Int("batch-reqs", 0, "max requests coalesced per engine execution, default 16 (enables the serving frontend)")
		maxQueue  = flag.Int("max-queue", 0, "bounded admission queue depth (enables the serving frontend)")
		slaBudget = flag.Duration("sla", 0, "per-request SLA budget for admission control (enables the serving frontend)")
		hedge     = flag.Duration("hedge", 0, "hedge sparse RPCs against a peer replica after this delay (needs repeated -peers names)")
		maxInFly  = flag.Int("max-inflight", 0, "main role: reject requests beyond this many in flight (0 = unbounded)")

		// Health-aware replica management (main role, with hedge
		// replicas): eject a replica from the rotation after consecutive
		// failures, re-admit it through probation probes.
		healthFails = flag.Int("health-fails", 0, "eject a hedge replica after this many consecutive failures (0 disables; needs repeated -peers names)")
		healthProbe = flag.Duration("health-probe", 0, "probation probe interval for ejected replicas (default 250ms)")

		// Online resharding (main role): periodically collect the sparse
		// shards' measured load and migrate tables live toward balance.
		rebalEvery = flag.Duration("rebalance-every", 0, "main role: run a capacity-driven rebalance pass at this interval (0 disables)")
		moveBudget = flag.Int("move-budget", 4, "max table moves per rebalance pass")

		// Online model freshness (main role): periodically publish a
		// versioned delta set to every sparse peer over the
		// sparse.update.* control plane.
		publishEvery = flag.Duration("publish-every", 0, "main role: publish an identity delta set (freshness load, no score impact) at this interval (0 disables)")
		publishRows  = flag.Int("publish-rows", 16, "rows republished per table per publish tick")

		// Tiered embedding storage (sparse role): a hot-row cache byte
		// budget in front of a quantized cold tier.
		cacheMB   = flag.Float64("cache-mb", 0, "sparse role: hot-row cache budget in MiB, apportioned across tables by measured load (0 disables)")
		coldPrec  = flag.String("cold-precision", "fp32", "sparse role: cold-tier storage precision: fp32, fp16, or int8")
		errBudget = flag.Float64("error-budget", 0, "sparse role: max quantization error as a fraction of value scale (0 = default 1/250)")

		// Dense compute engine (main role runs the MLP stacks): per-GEMM
		// worker fan-out and row-tile height. Outputs are bitwise
		// identical at every setting.
		densePar   = flag.Int("dense-par", 0, "dense GEMM workers per multiply: 0 = GOMAXPROCS, 1 = serial")
		gemmBlock  = flag.Int("gemm-block", 0, "dense GEMM row-tile height per worker claim (0 = default)")
		kernelName = flag.String("kernel", "", "compute kernel: auto, generic, or vector (default auto; REPRO_KERNEL env sets the same)")

		// Multi-model co-serving (coserve role): every -model becomes one
		// hosted tenant behind a shared front door, with an elastic
		// scheduler moving replica capacity between them.
		capacity     = flag.Float64("capacity", 0, "coserve role: fleet hardware in units (sparse servers); 0 = exactly the sum of initial allocations")
		elasticEvery = flag.Duration("elastic-every", 0, "coserve role: elastic scheduler tick (0 disables autonomous reallocation)")
		scale        = flag.String("scale", "", "coserve role: force MODEL=N serving replicas after -scale-after (the CI smoke's forced scale-up)")
		scaleAfter   = flag.Duration("scale-after", 2*time.Second, "coserve role: delay before applying -scale")

		// Live telemetry: the obs registry aggregates per-stage counters
		// and latency histograms; sampled request tracing adds end-to-end
		// stage breakdowns for one of every -trace-sample requests.
		metricsAddr = flag.String("metrics-addr", "", "serve live metrics over HTTP: /metrics (text), /metrics.json, /traces, /debug/pprof/ (empty disables)")
		traceSample = flag.Int("trace-sample", 0, "main role: live-sample one of every N requests into a stage-breakdown trace (0 disables; deadline misses always sampled)")
		metricsLog  = flag.Duration("metrics-log", 0, "log a metrics snapshot diff to stderr at this interval (0 disables)")
	)
	flag.Var(&models, "model", "model to serve: DRM1, DRM2, DRM3; -role coserve takes repeated tenant specs NAME[=MODEL][:key=val,...] (keys: sla, shards, strategy, replicas, slots, min, max, queue, batch-wait, batch-reqs)")
	flag.Parse()
	tensor.SetParallelism(*densePar)
	tensor.SetBlockRows(*gemmBlock)
	if *kernelName != "" {
		k, err := tensor.KernelFromString(*kernelName)
		if err != nil {
			fatal(err)
		}
		tensor.SetKernel(k)
	}

	scaleModel, scaleTo, err := parseScale(*scale)
	if err != nil {
		fatal(err)
	}

	// The single-model roles derive one model and plan from the flags;
	// coserve builds a model and plan per tenant spec instead.
	var m *model.Model
	var plan *sharding.Plan
	var tier *core.TierConfig
	modelName := models.primary()
	if *role != "coserve" {
		if *modelFile != "" {
			f, err := os.Open(*modelFile)
			if err != nil {
				fatal(err)
			}
			m, err = model.Load(f)
			f.Close()
			if err != nil {
				fatal(err)
			}
			if m.Config.Name != modelName {
				fatal(fmt.Errorf("model file holds %s, flag says %s", m.Config.Name, modelName))
			}
		}
		cfg := model.ByName(modelName)
		if m != nil {
			cfg = m.Config
		}
		pooling := workload.EstimatePooling(workload.NewGenerator(cfg, 991), 200)
		plan, err = buildPlan(&cfg, *strategy, *shards, pooling)
		if err != nil {
			fatal(err)
		}
		if m == nil {
			m = model.Build(cfg)
		}
		tier, err = buildTier(&cfg, *cacheMB, *coldPrec, *errBudget)
		if err != nil {
			fatal(err)
		}
	}

	// The registry only pays for itself when something reads it; with no
	// exporter and no tracing it discards, and every instrumented path in
	// the process degrades to a nil-handle branch.
	reg := obs.Discard()
	if *metricsAddr != "" || *metricsLog > 0 || *traceSample > 0 {
		reg = obs.NewRegistry()
	}
	var tracer *obs.Tracer
	if *traceSample > 0 {
		tracer = obs.NewTracer(reg, obs.TracerConfig{SampleEvery: *traceSample, OnDeadlineMiss: true})
	}

	var srv *rpc.Server
	shutdown := func() {}
	switch *role {
	case "sparse":
		if *shardDir != "" {
			srv, shutdown, err = serveSparseFromDir(*shardDir, modelName, *shardNum, *listen, *netDelay, tier, reg)
			break
		}
		if *shardFile != "" {
			srv, err = serveSparseFromFile(*shardFile, *listen, *netDelay, tier, reg)
			break
		}
		srv, err = serveSparse(m, plan, *shardNum, *listen, *netDelay, tier, reg)
	case "main":
		opts := mainOptions{
			batchWait:      *batchWait,
			batchReqs:      *batchReqs,
			maxQueue:       *maxQueue,
			sla:            *slaBudget,
			hedge:          *hedge,
			maxInFlight:    *maxInFly,
			healthFails:    *healthFails,
			healthProbe:    *healthProbe,
			rebalanceEvery: *rebalEvery,
			moveBudget:     *moveBudget,
			publishEvery:   *publishEvery,
			publishRows:    *publishRows,
			obs:            reg,
			tracer:         tracer,
		}
		srv, shutdown, err = serveMain(m, plan, *listen, *peers, *netDelay, opts)
	case "coserve":
		defaults := tenantFlagSpec{
			sla: *slaBudget, queue: *maxQueue,
			batchWait: *batchWait, batchReqs: *batchReqs,
			shards: *shards, strategy: *strategy,
		}
		var fl *cluster.Fleet
		fl, err = serveCoserve([]string(models), defaults, coserveOptions{
			listen: *listen, capacity: *capacity, every: *elasticEvery,
			hedge: *hedge, healthFails: *healthFails, healthProbe: *healthProbe,
			maxInFlight: *maxInFly, obs: reg,
		})
		if err == nil {
			shutdown = fl.Close
			if scaleModel != "" {
				go forceScaleAfter(fl, scaleModel, scaleTo, *scaleAfter)
			}
		}
	default:
		err = fmt.Errorf("unknown role %q", *role)
	}
	if err != nil {
		fatal(err)
	}
	if *metricsAddr != "" {
		bound, stopHTTP, merr := obs.Serve(*metricsAddr, reg, tracer)
		if merr != nil {
			if srv != nil {
				srv.Close()
			}
			shutdown()
			fatal(merr)
		}
		fmt.Printf("drmserve: metrics on http://%s/metrics (/metrics.json, /traces, /debug/pprof/)\n", bound)
		prev := shutdown
		shutdown = func() { stopHTTP(); prev() }
	}
	if *metricsLog > 0 {
		stopLog := obs.StartLogger(reg, os.Stderr, *metricsLog)
		prev := shutdown
		shutdown = func() { stopLog(); prev() }
	}
	switch {
	case *role == "coserve":
		// serveCoserve already printed the fleet banner.
	case *shardDir != "":
		fmt.Printf("drmserve: sparse shard (mmap from %s) on %s\n", *shardDir, srv.Addr())
	case *shardFile != "":
		fmt.Printf("drmserve: sparse shard (from %s) on %s\n", *shardFile, srv.Addr())
	default:
		fmt.Printf("drmserve: %s shard serving %s (%s) on %s\n", *role, modelName, plan.Name(), srv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if srv != nil {
		srv.Close()
	}
	shutdown()
}

// buildTier translates the tiered-storage flags into a shard tier
// config; nil when tiering is entirely off.
func buildTier(cfg *model.Config, cacheMB float64, coldPrec string, errBudget float64) (*core.TierConfig, error) {
	prec, err := sharding.ParsePrecision(coldPrec)
	if err != nil {
		return nil, err
	}
	if cacheMB < 0 {
		return nil, fmt.Errorf("-cache-mb %g < 0", cacheMB)
	}
	if cacheMB == 0 && prec == sharding.PrecisionFP32 {
		return nil, nil
	}
	return &core.TierConfig{
		CacheMB: cacheMB,
		Plan:    sharding.PlanTiers(cfg, sharding.TierOptions{ColdPrecision: prec, ErrorBudget: errBudget}),
	}, nil
}

// serveSparseFromDir boots a sparse shard from its v2 shard file inside
// dir, serving lookups out of mmap-backed storage where the platform
// allows — the paper's publish-then-load flow without regenerating the
// model. The returned shutdown releases the mapping (after the server).
func serveSparseFromDir(dir, modelName string, shard int, listen string, sim bool, tier *core.TierConfig, reg *obs.Registry) (*rpc.Server, func(), error) {
	path := core.ShardFilePath(dir, modelName, shard)
	rec := trace.NewRecorder(core.ServiceName(shard), 1<<16)
	sh, got, closer, err := core.OpenShardFile(path, rec)
	if err != nil {
		return nil, nil, err
	}
	if got != shard {
		sh.Close()
		closer.Close()
		return nil, nil, fmt.Errorf("%s holds shard %d, -shard says %d", path, got, shard)
	}
	if tier != nil {
		sh.SetTier(tier)
	}
	sh.SetObs(reg)
	cfg := rpc.ServerConfig{Recorder: rec, BoilerplateCost: platform.BaseBoilerplate}
	if sim {
		cfg.ResponseLink = platform.SCLarge().Network(int64(shard)).Response
	}
	fmt.Printf("drmserve: %s mapped from %s: %d tables/parts, %.1f MiB\n",
		sh.ShardName, path, sh.NumTables(), float64(sh.Bytes())/(1<<20))
	srv, err := rpc.NewServer(listen, sh, cfg)
	if err != nil {
		sh.Close()
		closer.Close()
		return nil, nil, err
	}
	return srv, func() { closer.Close() }, nil
}

// serveSparseFromFile boots a sparse shard straight from a shard file —
// the shard never materializes the rest of the model.
func serveSparseFromFile(path, listen string, sim bool, tier *core.TierConfig, reg *obs.Registry) (*rpc.Server, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rec := trace.NewRecorder("sparse", 1<<16)
	sh, shard, err := core.ImportShard(f, rec)
	if err != nil {
		return nil, err
	}
	if tier != nil {
		sh.SetTier(tier)
	}
	sh.SetObs(reg)
	cfg := rpc.ServerConfig{Recorder: rec, BoilerplateCost: platform.BaseBoilerplate}
	if sim {
		cfg.ResponseLink = platform.SCLarge().Network(int64(shard)).Response
	}
	fmt.Printf("drmserve: %s loaded from %s: %d tables/parts, %.1f MiB\n",
		sh.ShardName, path, sh.NumTables(), float64(sh.Bytes())/(1<<20))
	return rpc.NewServer(listen, sh, cfg)
}

func serveSparse(m *model.Model, plan *sharding.Plan, shard int, listen string, sim bool, tier *core.TierConfig, reg *obs.Registry) (*rpc.Server, error) {
	if !plan.IsDistributed() {
		return nil, fmt.Errorf("singular plans have no sparse shards")
	}
	if shard < 1 || shard > plan.NumShards {
		return nil, fmt.Errorf("shard %d outside [1, %d]", shard, plan.NumShards)
	}
	recs := make([]*trace.Recorder, plan.NumShards)
	for i := range recs {
		recs[i] = trace.NewRecorder(core.ServiceName(i+1), 1<<16)
	}
	all, err := core.MaterializeShardsTiered(m, plan, recs, tier)
	if err != nil {
		return nil, err
	}
	sh := all[shard-1]
	sh.SetObs(reg)
	cfg := rpc.ServerConfig{Recorder: recs[shard-1], BoilerplateCost: platform.BaseBoilerplate}
	if sim {
		cfg.ResponseLink = platform.SCLarge().Network(int64(shard)).Response
	}
	fmt.Printf("drmserve: %s holds %d tables/parts, %.1f MiB\n", sh.ShardName, sh.NumTables(), float64(sh.Bytes())/(1<<20))
	if tier != nil {
		ts := sh.TierSnapshot()
		fmt.Printf("drmserve: tiered store: %d fp32 / %d fp16 / %d int8 tables, %.1f MiB cold, %.1f MiB cache budget\n",
			ts.FP32, ts.FP16, ts.Int8, float64(ts.ColdBytes)/(1<<20), tier.CacheMB)
	}
	return rpc.NewServer(listen, sh, cfg)
}

// mainOptions carries the main role's serving-frontend tuning.
type mainOptions struct {
	batchWait      time.Duration
	batchReqs      int
	maxQueue       int
	sla            time.Duration
	hedge          time.Duration
	maxInFlight    int
	healthFails    int
	healthProbe    time.Duration
	rebalanceEvery time.Duration
	moveBudget     int
	publishEvery   time.Duration
	publishRows    int
	obs            *obs.Registry
	tracer         *obs.Tracer
}

// frontendEnabled reports whether any SLA-frontend flag was set.
func (o mainOptions) frontendEnabled() bool {
	return o.batchWait > 0 || o.maxQueue > 0 || o.sla > 0 || o.batchReqs > 0
}

func serveMain(m *model.Model, plan *sharding.Plan, listen, peers string, sim bool, opts mainOptions) (*rpc.Server, func(), error) {
	// Peer bindings, in order; a repeated name adds hedge replicas for
	// that service (first binding is the primary).
	peerAddrs := make(map[string][]string)
	if peers != "" {
		for _, binding := range strings.Split(peers, ",") {
			name, addr, ok := strings.Cut(strings.TrimSpace(binding), "=")
			if !ok {
				return nil, nil, fmt.Errorf("bad peer binding %q (want name=addr)", binding)
			}
			peerAddrs[name] = append(peerAddrs[name], addr)
		}
	}
	if opts.healthFails > 0 && opts.hedge <= 0 {
		// A silent replica produces no error to count; the breaker's
		// slow strikes (and its bounded waits) hang off the hedge timer.
		return nil, nil, fmt.Errorf("-health-fails requires -hedge > 0")
	}
	rec := trace.NewRecorder("main", 1<<18)
	if opts.tracer != nil {
		rec.SetSink(opts.tracer)
	}
	clients := make(map[string]rpc.Caller)
	eng, err := core.NewEngine(m, plan, core.EngineConfig{
		Recorder: rec,
		Obs:      opts.obs,
		ClientFor: func(service string) (rpc.Caller, error) {
			if c, ok := clients[service]; ok {
				return c, nil
			}
			addrs := peerAddrs[service]
			if len(addrs) == 0 {
				return nil, fmt.Errorf("service %q not bound by -peers", service)
			}
			var link *netsim.Link
			if sim {
				link = platform.SCLarge().Network(7).Request
			}
			callers := make([]rpc.Caller, 0, len(addrs))
			for _, addr := range addrs {
				c, err := rpc.Dial(addr, link)
				if err != nil {
					return nil, err
				}
				callers = append(callers, c)
			}
			var caller rpc.Caller = callers[0]
			if len(callers) > 1 {
				h, err := replication.NewHedged(callers, opts.hedge)
				if err != nil {
					return nil, err
				}
				if opts.healthFails > 0 {
					// Health-aware rotation: repeatedly failing replicas
					// are ejected and re-admitted via probation probes.
					h.Health = replication.NewHealthTracker(len(callers), replication.HealthConfig{
						FailThreshold: opts.healthFails,
						ProbeEvery:    opts.healthProbe,
					})
				}
				h.RegisterMetrics(opts.obs, "replication."+service+".")
				caller = h
			}
			clients[service] = caller
			return caller, nil
		},
	})
	if err != nil {
		return nil, nil, err
	}

	var handler rpc.Handler = &core.MainService{Engine: eng, Rec: rec, Tracer: opts.tracer}
	shutdown := func() {}
	if opts.frontendEnabled() {
		fe := frontend.New(eng, frontend.Config{
			BatchWait:        opts.batchWait,
			MaxBatchRequests: opts.batchReqs,
			MaxQueue:         opts.maxQueue,
			Budget:           opts.sla,
			Obs:              opts.obs,
			Tracer:           opts.tracer,
		})
		handler = &frontend.Service{F: fe, Rec: rec}
		shutdown = fe.Close
		fmt.Printf("drmserve: SLA frontend enabled (wait=%v queue=%d budget=%v)\n",
			opts.batchWait, opts.maxQueue, opts.sla)
	}
	srv, err := rpc.NewServer(listen, handler, rpc.ServerConfig{
		Recorder: rec, BoilerplateCost: platform.BaseBoilerplate,
		MaxInFlight: opts.maxInFlight,
	})
	if err != nil {
		shutdown()
		return nil, nil, err
	}
	opts.obs.RegisterProbeGroup(func(emit func(string, int64)) {
		s := srv.Stats()
		emit("rpc.main.inflight", s.InFlight)
		emit("rpc.main.peak_inflight", s.PeakInFlight)
		emit("rpc.main.overloads", s.Overloads)
	})

	if opts.rebalanceEvery > 0 && plan.IsDistributed() {
		mg := &core.Migrator{Engine: eng, Rec: rec, Shards: make(map[int]core.ShardEndpoint)}
		for i := 1; i <= plan.NumShards; i++ {
			name := core.ServiceName(i)
			addrs := peerAddrs[name]
			if len(addrs) == 0 {
				shutdown()
				srv.Close()
				return nil, nil, fmt.Errorf("-rebalance-every needs every shard in -peers; %s missing", name)
			}
			if len(addrs) > 1 {
				// Standalone replicas are separate processes with separate
				// table stores; migrating only the primary would leave the
				// replicas stale and turn every hedge into a miss. (The
				// in-process cluster is exempt: its replicas share one
				// store.)
				shutdown()
				srv.Close()
				return nil, nil, fmt.Errorf("-rebalance-every does not support hedge replicas yet (%s has %d addresses)", name, len(addrs))
			}
			// Control-plane calls go over a dedicated plain connection to
			// the primary: the serving caller may be hedged, and hedging a
			// migrate.commit would re-issue it against the same store.
			ctrl, err := rpc.DialPool(addrs[0], nil, 1)
			if err != nil {
				shutdown()
				srv.Close()
				return nil, nil, err
			}
			mg.Shards[i] = core.ShardEndpoint{Service: name, Addr: addrs[0], Caller: ctrl}
		}
		stop := make(chan struct{})
		go func() {
			ticker := time.NewTicker(opts.rebalanceEvery)
			defer ticker.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
					report, err := mg.Rebalance(sharding.RebalanceOptions{MoveBudget: opts.moveBudget})
					if err != nil {
						fmt.Fprintln(os.Stderr, "drmserve: rebalance:", err)
						continue
					}
					fmt.Println("drmserve:", report)
				}
			}
		}()
		prev := shutdown
		shutdown = func() { close(stop); prev() }
		fmt.Printf("drmserve: online resharding every %v (move budget %d)\n", opts.rebalanceEvery, opts.moveBudget)
	}

	if opts.publishEvery > 0 && plan.IsDistributed() {
		pub := &core.Publisher{Engine: eng, Rec: rec, Obs: opts.obs, Shards: make(map[int][]core.ShardEndpoint)}
		for i := 1; i <= plan.NumShards; i++ {
			name := core.ServiceName(i)
			addrs := peerAddrs[name]
			if len(addrs) == 0 {
				shutdown()
				srv.Close()
				return nil, nil, fmt.Errorf("-publish-every needs every shard in -peers; %s missing", name)
			}
			// Every address gets its own delta stream: standalone replicas
			// are separate processes with separate table stores, and a
			// publish must make all of them fresh. Connections are
			// dedicated and plain — hedging an update.commit would
			// re-issue it against a store that already took the version.
			for _, addr := range addrs {
				ctrl, err := rpc.DialPool(addr, nil, 1)
				if err != nil {
					shutdown()
					srv.Close()
					return nil, nil, err
				}
				pub.Shards[i] = append(pub.Shards[i], core.ShardEndpoint{Service: name, Addr: addr, Caller: ctrl})
			}
		}
		stop := make(chan struct{})
		go func() {
			ticker := time.NewTicker(opts.publishEvery)
			defer ticker.Stop()
			version := uint64(0)
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
					version++
					report, err := pub.Publish(identityDelta(m, version, opts.publishRows))
					if err != nil {
						fmt.Fprintln(os.Stderr, "drmserve: publish:", err)
						continue
					}
					fmt.Println("drmserve:", report)
				}
			}
		}()
		prev := shutdown
		shutdown = func() { close(stop); prev() }
		fmt.Printf("drmserve: publishing identity deltas every %v (%d rows/table)\n", opts.publishEvery, opts.publishRows)
	}
	return srv, shutdown, nil
}

// identityDelta builds a delta set that republishes rows already being
// served — synthetic freshness load whose commit provably cannot change
// scores. Each version samples a different contiguous row window.
func identityDelta(m *model.Model, version uint64, rowsPer int) *core.DeltaSet {
	ds := &core.DeltaSet{Version: version}
	if rowsPer <= 0 {
		rowsPer = 16
	}
	for id, tab := range m.Tables {
		dense, ok := tab.(*embedding.Dense)
		if !ok {
			continue
		}
		n := rowsPer
		if n > dense.RowsN {
			n = dense.RowsN
		}
		start := int(version*2654435761) % dense.RowsN
		rows := make([]int32, 0, n)
		data := make([]float32, 0, n*dense.DimN)
		for k := 0; k < n; k++ {
			r := (start + k) % dense.RowsN
			rows = append(rows, int32(r))
			data = append(data, dense.Data[r*dense.DimN:(r+1)*dense.DimN]...)
		}
		ds.Tables = append(ds.Tables, core.TableDelta{TableID: id, Rows: rows, Data: data})
	}
	return ds
}

func buildPlan(cfg *model.Config, strategy string, n int, pooling map[int]float64) (*sharding.Plan, error) {
	switch strategy {
	case sharding.StrategySingular:
		return sharding.Singular(cfg), nil
	case sharding.StrategyOneShard:
		return sharding.OneShard(cfg), nil
	case sharding.StrategyCapacity:
		return sharding.CapacityBalanced(cfg, n)
	case sharding.StrategyLoad:
		return sharding.LoadBalanced(cfg, n, pooling)
	case sharding.StrategyNSBP, "nsbp":
		return sharding.NSBP(cfg, n)
	}
	return nil, fmt.Errorf("unknown strategy %q", strategy)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drmserve:", err)
	os.Exit(1)
}
