// Command drmserve runs one shard of a distributed recommendation
// inference deployment as a standalone process: either the main shard
// (dense layers + RPC fan-out) or one sparse shard (embedding tables).
//
// Every process derives the identical sharding plan from the same flags
// (models and pooling estimation are deterministic), so a deployment is
// just N+1 processes agreeing on -model/-strategy/-shards:
//
//	drmserve -role sparse -shard 1 -model DRM1 -strategy load-bal -shards 2 -listen 127.0.0.1:7101
//	drmserve -role sparse -shard 2 -model DRM1 -strategy load-bal -shards 2 -listen 127.0.0.1:7102
//	drmserve -role main -model DRM1 -strategy load-bal -shards 2 \
//	    -listen 127.0.0.1:7100 -peers sparse1=127.0.0.1:7101,sparse2=127.0.0.1:7102
//
// Then drive it with cmd/replayer against 127.0.0.1:7100.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/platform"
	"repro/internal/rpc"
	"repro/internal/sharding"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		role      = flag.String("role", "main", "shard role: main or sparse")
		shardNum  = flag.Int("shard", 1, "sparse shard number (1-based)")
		modelName = flag.String("model", "DRM1", "model: DRM1, DRM2, DRM3")
		strategy  = flag.String("strategy", "load-bal", "sharding strategy")
		shards    = flag.Int("shards", 2, "sparse shard count")
		listen    = flag.String("listen", "127.0.0.1:0", "listen address")
		modelFile = flag.String("model-file", "", "load a serialized model (from shardtool -save-model) instead of building")
		shardFile = flag.String("shard-file", "", "sparse role: serve directly from a shard file (shardtool -export-shards)")
		peers     = flag.String("peers", "", "main role: comma-separated sparseN=host:port bindings")
		netDelay  = flag.Bool("netsim", false, "inject data-center link latency")
	)
	flag.Parse()

	var m *model.Model
	if *modelFile != "" {
		f, err := os.Open(*modelFile)
		if err != nil {
			fatal(err)
		}
		m, err = model.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if m.Config.Name != *modelName {
			fatal(fmt.Errorf("model file holds %s, flag says %s", m.Config.Name, *modelName))
		}
	}
	cfg := model.ByName(*modelName)
	if m != nil {
		cfg = m.Config
	}
	pooling := workload.EstimatePooling(workload.NewGenerator(cfg, 991), 200)
	plan, err := buildPlan(&cfg, *strategy, *shards, pooling)
	if err != nil {
		fatal(err)
	}
	if m == nil {
		m = model.Build(cfg)
	}

	var srv *rpc.Server
	switch *role {
	case "sparse":
		if *shardFile != "" {
			srv, err = serveSparseFromFile(*shardFile, *listen, *netDelay)
			break
		}
		srv, err = serveSparse(m, plan, *shardNum, *listen, *netDelay)
	case "main":
		srv, err = serveMain(m, plan, *listen, *peers, *netDelay)
	default:
		err = fmt.Errorf("unknown role %q", *role)
	}
	if err != nil {
		fatal(err)
	}
	if *shardFile != "" {
		fmt.Printf("drmserve: sparse shard (from %s) on %s\n", *shardFile, srv.Addr())
	} else {
		fmt.Printf("drmserve: %s shard serving %s (%s) on %s\n", *role, *modelName, plan.Name(), srv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
}

// serveSparseFromFile boots a sparse shard straight from a shard file —
// the shard never materializes the rest of the model.
func serveSparseFromFile(path, listen string, sim bool) (*rpc.Server, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rec := trace.NewRecorder("sparse", 1<<16)
	sh, shard, err := core.ImportShard(f, rec)
	if err != nil {
		return nil, err
	}
	cfg := rpc.ServerConfig{Recorder: rec, BoilerplateCost: platform.BaseBoilerplate}
	if sim {
		cfg.ResponseLink = platform.SCLarge().Network(int64(shard)).Response
	}
	fmt.Printf("drmserve: %s loaded from %s: %d tables/parts, %.1f MiB\n",
		sh.ShardName, path, sh.NumTables(), float64(sh.Bytes())/(1<<20))
	return rpc.NewServer(listen, sh, cfg)
}

func serveSparse(m *model.Model, plan *sharding.Plan, shard int, listen string, sim bool) (*rpc.Server, error) {
	if !plan.IsDistributed() {
		return nil, fmt.Errorf("singular plans have no sparse shards")
	}
	if shard < 1 || shard > plan.NumShards {
		return nil, fmt.Errorf("shard %d outside [1, %d]", shard, plan.NumShards)
	}
	recs := make([]*trace.Recorder, plan.NumShards)
	for i := range recs {
		recs[i] = trace.NewRecorder(core.ServiceName(i+1), 1<<16)
	}
	all, err := core.MaterializeShards(m, plan, recs)
	if err != nil {
		return nil, err
	}
	sh := all[shard-1]
	cfg := rpc.ServerConfig{Recorder: recs[shard-1], BoilerplateCost: platform.BaseBoilerplate}
	if sim {
		cfg.ResponseLink = platform.SCLarge().Network(int64(shard)).Response
	}
	fmt.Printf("drmserve: %s holds %d tables/parts, %.1f MiB\n", sh.ShardName, sh.NumTables(), float64(sh.Bytes())/(1<<20))
	return rpc.NewServer(listen, sh, cfg)
}

func serveMain(m *model.Model, plan *sharding.Plan, listen, peers string, sim bool) (*rpc.Server, error) {
	registry := rpc.NewRegistry()
	if peers != "" {
		for _, binding := range strings.Split(peers, ",") {
			name, addr, ok := strings.Cut(strings.TrimSpace(binding), "=")
			if !ok {
				return nil, fmt.Errorf("bad peer binding %q (want name=addr)", binding)
			}
			registry.Register(name, addr)
		}
	}
	rec := trace.NewRecorder("main", 1<<18)
	clients := make(map[string]*rpc.Client)
	eng, err := core.NewEngine(m, plan, core.EngineConfig{
		Recorder: rec,
		ClientFor: func(service string) (*rpc.Client, error) {
			if c, ok := clients[service]; ok {
				return c, nil
			}
			addr, err := registry.Lookup(service)
			if err != nil {
				return nil, err
			}
			var link *netsim.Link
			if sim {
				link = platform.SCLarge().Network(7).Request
			}
			c, err := rpc.Dial(addr, link)
			if err != nil {
				return nil, err
			}
			clients[service] = c
			return c, nil
		},
	})
	if err != nil {
		return nil, err
	}
	return rpc.NewServer(listen, &core.MainService{Engine: eng, Rec: rec}, rpc.ServerConfig{
		Recorder: rec, BoilerplateCost: platform.BaseBoilerplate,
	})
}

func buildPlan(cfg *model.Config, strategy string, n int, pooling map[int]float64) (*sharding.Plan, error) {
	switch strategy {
	case sharding.StrategySingular:
		return sharding.Singular(cfg), nil
	case sharding.StrategyOneShard:
		return sharding.OneShard(cfg), nil
	case sharding.StrategyCapacity:
		return sharding.CapacityBalanced(cfg, n)
	case sharding.StrategyLoad:
		return sharding.LoadBalanced(cfg, n, pooling)
	case sharding.StrategyNSBP, "nsbp":
		return sharding.NSBP(cfg, n)
	}
	return nil, fmt.Errorf("unknown strategy %q", strategy)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drmserve:", err)
	os.Exit(1)
}
