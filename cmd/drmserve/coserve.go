// The coserve role: one process hosts several ranking models on a
// shared fleet behind a single front door. Each repeated -model flag is
// one tenant spec; the elastic scheduler (enabled by -elastic-every)
// moves replica capacity between tenants from live load signals, and
// -scale forces a move for the CI smoke.
//
//	drmserve -role coserve \
//	    -model 'DRM1:sla=6ms,replicas=2,slots=3' \
//	    -model 'drm2b=DRM2:sla=8ms' \
//	    -capacity 10 -elastic-every 500ms -metrics-addr 127.0.0.1:9100
//
// Tenants are driven through the shared door with rank@<tenant>
// (cmd/replayer -tenant).
package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/frontend"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/workload"
)

// modelFlags makes -model repeatable: the single-model roles read the
// first value as the model name, the coserve role treats every value as
// one tenant spec.
type modelFlags []string

func (m *modelFlags) String() string { return strings.Join(*m, ",") }

func (m *modelFlags) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// primary is the single-model roles' model name (default DRM1).
func (m modelFlags) primary() string {
	if len(m) == 0 {
		return "DRM1"
	}
	name, _, _ := strings.Cut(m[0], ":")
	return strings.TrimSpace(name)
}

// tenantFlagSpec is one parsed -model tenant spec. The zero keys of a
// spec inherit the process-wide flags (-sla, -max-queue, -batch-wait,
// -batch-reqs, -shards, -strategy), so common tuning is written once.
type tenantFlagSpec struct {
	name, model string
	sla         time.Duration
	queue       int
	batchWait   time.Duration
	batchReqs   int
	shards      int
	strategy    string
	replicas    int
	slots       int
	min, max    int
}

// parseTenantSpec parses "NAME[=MODEL][:key=val,...]" over defaults d.
// NAME names the tenant (the rank@NAME route and model= obs label) and,
// without =MODEL, doubles as the model; NAME=MODEL hosts a tenant copy
// of MODEL under its own name.
func parseTenantSpec(s string, d tenantFlagSpec) (tenantFlagSpec, error) {
	out := d
	head, opts, hasOpts := strings.Cut(s, ":")
	head = strings.TrimSpace(head)
	if name, mod, ok := strings.Cut(head, "="); ok {
		out.name, out.model = strings.TrimSpace(name), strings.TrimSpace(mod)
	} else {
		out.name, out.model = head, head
	}
	if out.name == "" {
		return out, fmt.Errorf("tenant spec %q has no name", s)
	}
	if !knownModel(out.model) {
		return out, fmt.Errorf("tenant spec %q: unknown model %q (want %s)", s, out.model, strings.Join(model.Names(), ", "))
	}
	if !hasOpts {
		return out, nil
	}
	for _, kv := range strings.Split(opts, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok || v == "" {
			return out, fmt.Errorf("tenant spec %q: bad option %q (want key=val)", s, kv)
		}
		var err error
		switch k {
		case "sla":
			out.sla, err = time.ParseDuration(v)
		case "batch-wait":
			out.batchWait, err = time.ParseDuration(v)
		case "queue":
			out.queue, err = strconv.Atoi(v)
		case "batch-reqs":
			out.batchReqs, err = strconv.Atoi(v)
		case "shards":
			out.shards, err = strconv.Atoi(v)
		case "strategy":
			out.strategy = v
		case "replicas":
			out.replicas, err = strconv.Atoi(v)
		case "slots":
			out.slots, err = strconv.Atoi(v)
		case "min":
			out.min, err = strconv.Atoi(v)
		case "max":
			out.max, err = strconv.Atoi(v)
		default:
			return out, fmt.Errorf("tenant spec %q: unknown option %q", s, k)
		}
		if err != nil {
			return out, fmt.Errorf("tenant spec %q: option %q: %w", s, kv, err)
		}
	}
	return out, nil
}

// knownModel reports whether name is a buildable model (model.ByName
// panics on unknown names, so specs are validated first).
func knownModel(name string) bool {
	for _, n := range model.Names() {
		if strings.EqualFold(n, name) {
			return true
		}
	}
	return false
}

// parseScale parses the -scale flag's "MODEL=N" ("", 0 when unset).
func parseScale(s string) (string, int, error) {
	if s == "" {
		return "", 0, nil
	}
	name, nStr, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return "", 0, fmt.Errorf("-scale %q: want MODEL=N", s)
	}
	n, err := strconv.Atoi(nStr)
	if err != nil || n < 1 {
		return "", 0, fmt.Errorf("-scale %q: bad replica count %q", s, nStr)
	}
	return name, n, nil
}

// forceScaleAfter applies the -scale override once the fleet has had
// -scale-after of live traffic, and reports the executed move.
func forceScaleAfter(fl *cluster.Fleet, name string, to int, after time.Duration) {
	time.Sleep(after)
	if err := fl.ForceScale(name, to); err != nil {
		fmt.Fprintln(os.Stderr, "drmserve: forced scale:", err)
		return
	}
	tl := fl.Timeline()
	if len(tl) == 0 {
		fmt.Printf("drmserve: forced scale %s: already at %d replicas\n", name, to)
		return
	}
	ev := tl[len(tl)-1]
	fmt.Printf("drmserve: forced scale %s %d->%d (%d snapshot bytes in %v)\n",
		ev.Model, ev.From, ev.To, ev.RebuildBytes, ev.Took.Round(time.Microsecond))
}

// coserveOptions carries the coserve role's fleet-wide tuning.
type coserveOptions struct {
	listen      string
	capacity    float64
	every       time.Duration
	hedge       time.Duration
	healthFails int
	healthProbe time.Duration
	maxInFlight int
	obs         *obs.Registry
}

func serveCoserve(specArgs []string, defaults tenantFlagSpec, opts coserveOptions) (*cluster.Fleet, error) {
	if len(specArgs) == 0 {
		return nil, fmt.Errorf("-role coserve needs at least one -model tenant spec")
	}
	specs := make([]cluster.TenantSpec, 0, len(specArgs))
	for _, arg := range specArgs {
		ts, err := parseTenantSpec(arg, defaults)
		if err != nil {
			return nil, err
		}
		cfg := model.ByName(ts.model)
		pooling := workload.EstimatePooling(workload.NewGenerator(cfg, 991), 200)
		plan, err := buildPlan(&cfg, ts.strategy, ts.shards, pooling)
		if err != nil {
			return nil, fmt.Errorf("tenant %s: %w", ts.name, err)
		}
		specs = append(specs, cluster.TenantSpec{
			Name:  ts.name,
			Model: model.Build(cfg),
			Plan:  plan,
			Frontend: frontend.Config{
				BatchWait:        ts.batchWait,
				MaxBatchRequests: ts.batchReqs,
				MaxQueue:         ts.queue,
				Budget:           ts.sla,
			},
			InitialReplicas: ts.replicas,
			SlotReplicas:    ts.slots,
			MinReplicas:     ts.min,
			MaxReplicas:     ts.max,
		})
	}
	fl, err := cluster.BootFleet(specs, cluster.FleetOptions{
		Capacity:         opts.capacity,
		Interval:         opts.every,
		HedgeDelay:       opts.hedge,
		HealthFails:      opts.healthFails,
		HealthProbe:      opts.healthProbe,
		FrontMaxInFlight: opts.maxInFlight,
		Listen:           opts.listen,
		Obs:              opts.obs,
	})
	if err != nil {
		return nil, err
	}
	for i, name := range fl.Names() {
		cl := fl.TenantCluster(name)
		fmt.Printf("drmserve: tenant %s serves %s (%s): %d/%d replicas active, sla=%v\n",
			name, specs[i].Model.Config.Name, specs[i].Plan.Name(),
			cl.ActiveReplicas(), cl.ReplicaSlots(), specs[i].Frontend.Budget)
	}
	elastic := "elastic scheduler off"
	if opts.every > 0 {
		elastic = fmt.Sprintf("elastic every %v", opts.every)
	}
	fmt.Printf("drmserve: coserve front door on %s hosting %d models (%s)\n",
		fl.Addr(), len(specs), elastic)
	return fl, nil
}
