package main

import (
	"strings"
	"testing"
)

// The metrics gate gets tests of its own: requirement parsing (presence
// vs value floors), the brace-aware -require splitter that keeps
// labeled names whole, lookup across the three metric families, and the
// schema validator's invariants.

func sampleDoc() doc {
	return doc{
		At: "2026-08-07T12:00:00.000000001Z",
		Counters: map[string]int64{
			"coserve.moves": 3,
		},
		Gauges: map[string]int64{
			"frontend.completed{model=drm1a}":      48,
			"coserve.active_replicas{model=drm2b}": 2,
		},
		Histograms: map[string]histDoc{
			"frontend.e2e_ns": {Count: 48, Mean: 5, P50: 4, P95: 6, P99: 7, Max: 9},
		},
	}
}

func TestParseRequirement(t *testing.T) {
	cases := []struct {
		in      string
		name    string
		min     int64
		hasMin  bool
		wantErr bool
	}{
		{in: "engine.requests", name: "engine.requests"},
		{in: "coserve.moves>=1", name: "coserve.moves", min: 1, hasMin: true},
		{in: " frontend.completed{model=drm1a}>=100 ", name: "frontend.completed{model=drm1a}", min: 100, hasMin: true},
		{in: "coserve.moves>=", wantErr: true},
		{in: "coserve.moves>=abc", wantErr: true},
		{in: ">=3", wantErr: true},
	}
	for _, tc := range cases {
		got, err := parseRequirement(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseRequirement(%q) did not error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseRequirement(%q): %v", tc.in, err)
			continue
		}
		want := requirement{name: tc.name, min: tc.min, hasMin: tc.hasMin}
		if got != want {
			t.Errorf("parseRequirement(%q) = %+v, want %+v", tc.in, got, want)
		}
	}
}

func TestSplitRequirementsBraceAware(t *testing.T) {
	in := "a>=1, b{model=x}>=2 ,c{a=1,b=2},, d"
	want := []string{"a>=1", "b{model=x}>=2", "c{a=1,b=2}", "d"}
	got := splitRequirements(in)
	if len(got) != len(want) {
		t.Fatalf("splitRequirements(%q) = %v, want %v", in, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("part %d = %q, want %q", i, got[i], want[i])
		}
	}
	if got := splitRequirements(""); len(got) != 0 {
		t.Errorf("splitRequirements(\"\") = %v, want empty", got)
	}
}

func TestValueAcrossFamilies(t *testing.T) {
	d := sampleDoc()
	for name, want := range map[string]int64{
		"coserve.moves":                   3,  // counter
		"frontend.completed{model=drm1a}": 48, // labeled gauge
		"frontend.e2e_ns":                 48, // histogram -> count
	} {
		if v, ok := value(d, name); !ok || v != want {
			t.Errorf("value(%s) = %d, %v; want %d, true", name, v, ok, want)
		}
	}
	if _, ok := value(d, "nope"); ok {
		t.Error("value found a metric that does not exist")
	}
}

func TestRequirementCheck(t *testing.T) {
	d := sampleDoc()
	cases := []struct {
		spec    string
		wantErr string
	}{
		{spec: "coserve.moves"},
		{spec: "coserve.moves>=3"},
		{spec: "coserve.moves>=4", wantErr: "want >= 4"},
		{spec: "frontend.completed{model=drm1a}>=48"},
		{spec: "coserve.active_replicas{model=drm2b}>=2"},
		{spec: "frontend.e2e_ns>=48"},
		{spec: "absent.metric", wantErr: "absent"},
		{spec: "absent.metric>=1", wantErr: "absent"},
	}
	for _, tc := range cases {
		req, err := parseRequirement(tc.spec)
		if err != nil {
			t.Fatalf("parseRequirement(%q): %v", tc.spec, err)
		}
		err = req.check(d)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("check(%q): %v", tc.spec, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("check(%q) = %v, want error containing %q", tc.spec, err, tc.wantErr)
		}
	}
}

func TestValidateInvariants(t *testing.T) {
	good := sampleDoc()
	if err := validate(good); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}

	bad := sampleDoc()
	bad.At = "yesterday"
	if err := validate(bad); err == nil {
		t.Error("non-RFC3339Nano timestamp accepted")
	}

	bad = sampleDoc()
	bad.Counters["coserve.moves"] = -1
	if err := validate(bad); err == nil {
		t.Error("negative counter accepted")
	}

	bad = sampleDoc()
	bad.Histograms["frontend.e2e_ns"] = histDoc{Count: 5, P50: 9, P95: 6, P99: 7, Max: 9}
	if err := validate(bad); err == nil {
		t.Error("unordered quantiles accepted")
	}

	// An empty histogram skips the quantile checks entirely.
	empty := sampleDoc()
	empty.Histograms["frontend.e2e_ns"] = histDoc{}
	if err := validate(empty); err != nil {
		t.Errorf("empty histogram rejected: %v", err)
	}
}
