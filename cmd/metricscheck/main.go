// Command metricscheck validates a live drmserve metrics endpoint: it
// fetches /metrics.json from the given base URL and checks the document
// against the export schema — a parseable RFC3339Nano timestamp, integer
// counters and gauges, and histogram summaries whose quantiles are
// ordered (p50 <= p95 <= p99 <= max). CI boots a deployment with
// -metrics-addr and runs this against it, so a schema drift in the obs
// exporter fails the build rather than a downstream dashboard.
//
// -require takes comma-separated requirements; each is a metric name
// (counter, gauge, or histogram) that must be present, optionally with
// a ">=N" floor on its value (histograms compare their observation
// count). Labeled metrics are plain names here — commas inside {...}
// label sets do not split:
//
//	metricscheck http://127.0.0.1:9100
//	metricscheck -require engine.requests http://127.0.0.1:9100
//	metricscheck -require 'frontend.completed{model=drm1a}>=100,coserve.moves>=1' http://127.0.0.1:9100
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

// histDoc mirrors the obs exporter's per-histogram summary.
type histDoc struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// doc mirrors the top-level /metrics.json document.
type doc struct {
	At         string             `json:"at"`
	Counters   map[string]int64   `json:"counters"`
	Gauges     map[string]int64   `json:"gauges"`
	Histograms map[string]histDoc `json:"histograms"`
}

func main() {
	var (
		require = flag.String("require", "", "comma-separated requirements: metric names that must be present, each optionally floored as name>=N")
		timeout = flag.Duration("timeout", 10*time.Second, "fetch timeout")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: metricscheck [-require names] <base-url>")
		os.Exit(2)
	}
	url := strings.TrimSuffix(flag.Arg(0), "/") + "/metrics.json"

	client := &http.Client{Timeout: *timeout}
	resp, err := client.Get(url)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body))))
	}

	var d doc
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		fatal(fmt.Errorf("decoding %s: %w", url, err))
	}
	if err := validate(d); err != nil {
		fatal(err)
	}
	for _, spec := range splitRequirements(*require) {
		req, err := parseRequirement(spec)
		if err != nil {
			fatal(err)
		}
		if err := req.check(d); err != nil {
			fatal(fmt.Errorf("%w in %s", err, url))
		}
	}
	fmt.Printf("metricscheck: ok: %d counters, %d gauges, %d histograms at %s\n",
		len(d.Counters), len(d.Gauges), len(d.Histograms), d.At)
}

// validate checks the document's internal invariants.
func validate(d doc) error {
	if _, err := time.Parse(time.RFC3339Nano, d.At); err != nil {
		return fmt.Errorf("at %q is not RFC3339Nano: %w", d.At, err)
	}
	for name, c := range d.Counters {
		if c < 0 {
			return fmt.Errorf("counter %s = %d is negative", name, c)
		}
	}
	for name, h := range d.Histograms {
		if h.Count < 0 {
			return fmt.Errorf("histogram %s count = %d is negative", name, h.Count)
		}
		if h.Count == 0 {
			continue
		}
		if h.P50 > h.P95 || h.P95 > h.P99 || h.P99 > h.Max {
			return fmt.Errorf("histogram %s quantiles unordered: p50=%g p95=%g p99=%g max=%g",
				name, h.P50, h.P95, h.P99, h.Max)
		}
		if h.Mean < 0 || h.Max < 0 {
			return fmt.Errorf("histogram %s has negative summary: mean=%g max=%g", name, h.Mean, h.Max)
		}
	}
	return nil
}

// requirement is one -require entry: a metric that must be present,
// optionally with a floor on its value.
type requirement struct {
	name   string
	min    int64
	hasMin bool
}

// parseRequirement parses "name" or "name>=N".
func parseRequirement(s string) (requirement, error) {
	name, val, floored := strings.Cut(s, ">=")
	name = strings.TrimSpace(name)
	if name == "" {
		return requirement{}, fmt.Errorf("requirement %q has no metric name", s)
	}
	if !floored {
		return requirement{name: name}, nil
	}
	n, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
	if err != nil {
		return requirement{}, fmt.Errorf("requirement %q: bad floor %q", s, val)
	}
	return requirement{name: name, min: n, hasMin: true}, nil
}

// check enforces the requirement against the document.
func (r requirement) check(d doc) error {
	v, ok := value(d, r.name)
	if !ok {
		return fmt.Errorf("required metric %q absent", r.name)
	}
	if r.hasMin && v < r.min {
		return fmt.Errorf("required metric %q = %d, want >= %d", r.name, v, r.min)
	}
	return nil
}

// value looks name up across the three metric families, reducing a
// histogram to its observation count.
func value(d doc, name string) (int64, bool) {
	if v, ok := d.Counters[name]; ok {
		return v, true
	}
	if v, ok := d.Gauges[name]; ok {
		return v, true
	}
	if h, ok := d.Histograms[name]; ok {
		return h.Count, true
	}
	return 0, false
}

// splitRequirements splits the -require flag on commas at brace depth
// zero, so multi-label metric names like name{a=1,b=2} stay whole.
func splitRequirements(s string) []string {
	var out []string
	depth, start := 0, 0
	flush := func(end int) {
		if p := strings.TrimSpace(s[start:end]); p != "" {
			out = append(out, p)
		}
		start = end + 1
	}
	for i, c := range s {
		switch c {
		case '{':
			depth++
		case '}':
			if depth > 0 {
				depth--
			}
		case ',':
			if depth == 0 {
				flush(i)
			}
		}
	}
	flush(len(s))
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "metricscheck:", err)
	os.Exit(1)
}
