// Command benchcheck turns `go test -bench` output into a JSON
// benchmark manifest and gates CI on regressions against a committed
// baseline.
//
// Modes:
//
//	benchcheck -in bench.out -out BENCH_ci.json                      # parse only
//	benchcheck -in bench.out -out BENCH_baseline.json -update        # (re)write the baseline
//	benchcheck -in bench.out -out BENCH_ci.json \
//	    -baseline BENCH_baseline.json -threshold 1.25                # gate: fail >25% slower
//	benchcheck -in bench.out \
//	    -assert-faster 'BenchmarkDenseGEMM/vector<BenchmarkDenseGEMM/generic'
//	                                                # gate: fail unless A beats B in this run
//
// Comparison keys on ns/op per benchmark name (GOMAXPROCS suffix
// stripped, so a differently-sized CI runner still matches names).
// When a name repeats — `go test -bench -count=N` — the best (minimum)
// ns/op wins: the minimum estimates the workload's true cost, while the
// other runs mostly measure scheduler noise on a shared CI box.
// Benchmarks present on only one side are reported but never fail the
// gate — adding or retiring a benchmark is not a regression.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches e.g. "BenchmarkFoo-8   123   4567 ns/op   89 B/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op`)

// Result is one benchmark's manifest entry.
type Result struct {
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

func main() {
	var (
		in        = flag.String("in", "", "benchmark output to parse (default stdin)")
		out       = flag.String("out", "", "JSON manifest to write")
		baseline  = flag.String("baseline", "", "baseline manifest to gate against (optional)")
		threshold = flag.Float64("threshold", 1.25, "fail when current ns/op exceeds baseline × threshold")
		update    = flag.Bool("update", false, "treat -out as a fresh baseline (no gating)")
		faster    = flag.String("assert-faster", "", "comma-separated 'A<B' pairs: fail unless benchmark A's ns/op is strictly below B's in this run")
	)
	flag.Parse()

	src := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	current, err := parse(src)
	if err != nil {
		fatal(err)
	}
	if len(current) == 0 {
		fatal(fmt.Errorf("no benchmark lines found"))
	}
	if *out != "" {
		if err := writeManifest(*out, current); err != nil {
			fatal(err)
		}
		fmt.Printf("benchcheck: wrote %d benchmarks to %s\n", len(current), *out)
	}
	// Within-run ordering assertions are independent of the baseline:
	// they compare two names from the same bench.out, so they run even
	// in -update mode (a baseline refresh must not smuggle in a world
	// where the vectorized kernel lost to the scalar one).
	if *faster != "" {
		violations, err := assertFaster(current, *faster)
		if err != nil {
			fatal(err)
		}
		if len(violations) > 0 {
			for _, s := range violations {
				fmt.Fprintln(os.Stderr, "benchcheck: ORDER VIOLATION:", s)
			}
			os.Exit(1)
		}
		fmt.Printf("benchcheck: %d ordering assertions hold\n", len(strings.Split(*faster, ",")))
	}
	if *update || *baseline == "" {
		return
	}

	base, err := readManifest(*baseline)
	if err != nil {
		fatal(err)
	}
	regressions, improved, onlyOne := compare(current, base, *threshold)
	for _, s := range improved {
		fmt.Println("benchcheck: improved:", s)
	}
	for _, s := range onlyOne {
		fmt.Println("benchcheck: unmatched:", s)
	}
	if len(regressions) > 0 {
		for _, s := range regressions {
			fmt.Fprintln(os.Stderr, "benchcheck: REGRESSION:", s)
		}
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %d benchmarks within %.2fx of baseline\n", len(current), *threshold)
}

// compare gates current against base: a benchmark regresses when its
// ns/op strictly exceeds baseline × threshold (landing exactly on the
// threshold passes), improves when it beats baseline ÷ threshold, and a
// name present on only one side is reported but never fails the gate.
func compare(current, base map[string]Result, threshold float64) (regressions, improved, onlyOne []string) {
	for _, name := range sortedNames(current) {
		cur := current[name]
		b, ok := base[name]
		if !ok {
			onlyOne = append(onlyOne, name+" (new)")
			continue
		}
		ratio := cur.NsPerOp / b.NsPerOp
		switch {
		case ratio > threshold:
			regressions = append(regressions, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%.2fx > %.2fx)",
				name, b.NsPerOp, cur.NsPerOp, ratio, threshold))
		case ratio < 1/threshold:
			improved = append(improved, fmt.Sprintf("%s: %.2fx faster", name, 1/ratio))
		}
	}
	for _, name := range sortedNames(base) {
		if _, ok := current[name]; !ok {
			onlyOne = append(onlyOne, name+" (removed)")
		}
	}
	return regressions, improved, onlyOne
}

// assertFaster evaluates a comma-separated list of 'A<B' pairs against
// one run's results: every pair must name two benchmarks present in the
// run, and A's ns/op must be strictly below B's. Unlike the baseline
// gate, a missing name here is an error — an assertion that silently
// stops matching anything would otherwise keep "passing" after a
// benchmark rename.
func assertFaster(current map[string]Result, spec string) (violations []string, err error) {
	for _, pair := range strings.Split(spec, ",") {
		a, b, ok := strings.Cut(strings.TrimSpace(pair), "<")
		if !ok || a == "" || b == "" {
			return nil, fmt.Errorf("bad -assert-faster pair %q (want 'A<B')", pair)
		}
		ra, okA := current[a]
		rb, okB := current[b]
		if !okA {
			return nil, fmt.Errorf("-assert-faster: %q not found in this run", a)
		}
		if !okB {
			return nil, fmt.Errorf("-assert-faster: %q not found in this run", b)
		}
		if ra.NsPerOp >= rb.NsPerOp {
			violations = append(violations, fmt.Sprintf("%s (%.2f ns/op) is not faster than %s (%.2f ns/op)",
				a, ra.NsPerOp, b, rb.NsPerOp))
		}
	}
	return violations, nil
}

func parse(f io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, _ := strconv.Atoi(m[2])
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		// Best-of-N: -count=N repeats a name; keep the fastest run.
		if prev, ok := out[m[1]]; ok && prev.NsPerOp <= ns {
			continue
		}
		out[m[1]] = Result{Iterations: iters, NsPerOp: ns}
	}
	return out, sc.Err()
}

func readManifest(path string) (map[string]Result, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out map[string]Result
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func writeManifest(path string, results map[string]Result) error {
	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func sortedNames(m map[string]Result) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}
