package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The CI benchmark gate finally gets tests of its own: the parser, the
// manifest reader's failure modes (missing baseline file, malformed
// JSON), and the gate's threshold semantics — including the exact-
// threshold boundary, which must pass.

func TestParseBenchOutput(t *testing.T) {
	out := `
goos: linux
BenchmarkFoo-8        123    4567 ns/op    89 B/op
BenchmarkBar          10     123.5 ns/op
BenchmarkNoMatch      garbage
PASS
`
	got, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	if r := got["BenchmarkFoo"]; r.Iterations != 123 || r.NsPerOp != 4567 {
		t.Fatalf("BenchmarkFoo = %+v (GOMAXPROCS suffix must be stripped)", r)
	}
	if r := got["BenchmarkBar"]; r.NsPerOp != 123.5 {
		t.Fatalf("BenchmarkBar = %+v", r)
	}
}

func TestParseBestOfN(t *testing.T) {
	// `go test -bench -count=3` repeats each name; the gate keys on the
	// best (minimum) ns/op so one noisy run cannot fail CI.
	out := `
BenchmarkFoo-8    100    5000 ns/op
BenchmarkFoo-8    120    4200 ns/op
BenchmarkFoo-8    110    4900 ns/op
BenchmarkBar-8    50     900 ns/op
BenchmarkBar-8    40     1100 ns/op
PASS
`
	got, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	if r := got["BenchmarkFoo"]; r.NsPerOp != 4200 || r.Iterations != 120 {
		t.Fatalf("BenchmarkFoo = %+v, want the fastest of three runs (4200 ns/op)", r)
	}
	if r := got["BenchmarkBar"]; r.NsPerOp != 900 {
		t.Fatalf("BenchmarkBar = %+v, want the fastest of two runs (900 ns/op)", r)
	}
}

func TestReadManifestMissingFile(t *testing.T) {
	if _, err := readManifest(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing baseline file did not error")
	}
}

func TestReadManifestMalformedJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"BenchmarkFoo": {`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := readManifest(path)
	if err == nil {
		t.Fatal("malformed JSON did not error")
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("error does not name the offending file: %v", err)
	}
}

func TestCompareThresholdSemantics(t *testing.T) {
	base := map[string]Result{
		"BenchmarkExact":    {NsPerOp: 100},
		"BenchmarkOver":     {NsPerOp: 100},
		"BenchmarkFaster":   {NsPerOp: 100},
		"BenchmarkRetired":  {NsPerOp: 100},
		"BenchmarkUnmoved":  {NsPerOp: 100},
		"BenchmarkJustOver": {NsPerOp: 100},
	}
	current := map[string]Result{
		"BenchmarkExact":    {NsPerOp: 125},     // exactly threshold: passes
		"BenchmarkOver":     {NsPerOp: 200},     // 2.00x: regression
		"BenchmarkJustOver": {NsPerOp: 125.001}, // barely over: regression
		"BenchmarkFaster":   {NsPerOp: 50},      // 2x faster: improved
		"BenchmarkUnmoved":  {NsPerOp: 101},
		"BenchmarkNew":      {NsPerOp: 10}, // present only here: unmatched
	}
	regressions, improved, onlyOne := compare(current, base, 1.25)

	if len(regressions) != 2 {
		t.Fatalf("regressions = %v, want BenchmarkOver and BenchmarkJustOver", regressions)
	}
	for _, s := range regressions {
		if !strings.HasPrefix(s, "BenchmarkOver") && !strings.HasPrefix(s, "BenchmarkJustOver") {
			t.Fatalf("unexpected regression %q", s)
		}
	}
	if len(improved) != 1 || !strings.HasPrefix(improved[0], "BenchmarkFaster") {
		t.Fatalf("improved = %v", improved)
	}
	// New and retired benchmarks are reported but never fail the gate.
	wantUnmatched := map[string]bool{"BenchmarkNew (new)": true, "BenchmarkRetired (removed)": true}
	if len(onlyOne) != len(wantUnmatched) {
		t.Fatalf("unmatched = %v", onlyOne)
	}
	for _, s := range onlyOne {
		if !wantUnmatched[s] {
			t.Fatalf("unexpected unmatched entry %q", s)
		}
	}
}

func TestCompareExactThresholdIsNotRegression(t *testing.T) {
	// The boundary case in isolation: ratio == threshold must pass — the
	// gate fails only on strictly worse.
	regressions, improved, onlyOne := compare(
		map[string]Result{"BenchmarkEdge": {NsPerOp: 125}},
		map[string]Result{"BenchmarkEdge": {NsPerOp: 100}},
		1.25,
	)
	if len(regressions) != 0 || len(improved) != 0 || len(onlyOne) != 0 {
		t.Fatalf("exact threshold misclassified: reg=%v imp=%v un=%v", regressions, improved, onlyOne)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	in := map[string]Result{"BenchmarkA": {Iterations: 7, NsPerOp: 42.5}}
	if err := writeManifest(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := readManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if out["BenchmarkA"] != in["BenchmarkA"] {
		t.Fatalf("round trip changed manifest: %+v", out)
	}
}

func TestAssertFasterHoldsAndViolates(t *testing.T) {
	run := map[string]Result{
		"BenchmarkGEMM/vector":  {NsPerOp: 450_000},
		"BenchmarkGEMM/generic": {NsPerOp: 2_800_000},
		"BenchmarkRow/int8-vec": {NsPerOp: 33},
		"BenchmarkRow/int8":     {NsPerOp: 27},
	}
	violations, err := assertFaster(run, "BenchmarkGEMM/vector<BenchmarkGEMM/generic")
	if err != nil || len(violations) != 0 {
		t.Fatalf("holding assertion reported violations %v (err %v)", violations, err)
	}
	// Multiple pairs, one of which fails: the violation names both sides
	// with their measured values.
	violations, err = assertFaster(run,
		"BenchmarkGEMM/vector<BenchmarkGEMM/generic, BenchmarkRow/int8-vec<BenchmarkRow/int8")
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 1 || !strings.Contains(violations[0], "BenchmarkRow/int8-vec") ||
		!strings.Contains(violations[0], "BenchmarkRow/int8 ") {
		t.Fatalf("violations = %v, want one naming both sides", violations)
	}
}

func TestAssertFasterTiesViolate(t *testing.T) {
	// "Faster" means strictly faster: a tie means the vectorized kernel
	// bought nothing, which is exactly what the assertion exists to catch.
	run := map[string]Result{"BenchmarkA": {NsPerOp: 100}, "BenchmarkB": {NsPerOp: 100}}
	violations, err := assertFaster(run, "BenchmarkA<BenchmarkB")
	if err != nil || len(violations) != 1 {
		t.Fatalf("tie not flagged: %v (err %v)", violations, err)
	}
}

func TestAssertFasterMissingNameErrors(t *testing.T) {
	// A renamed benchmark must break the assertion loudly, not let it
	// keep vacuously passing.
	run := map[string]Result{"BenchmarkA": {NsPerOp: 1}}
	for _, spec := range []string{
		"BenchmarkGone<BenchmarkA", // left side missing
		"BenchmarkA<BenchmarkGone", // right side missing
		"BenchmarkA",               // malformed: no '<'
		"<BenchmarkA",              // malformed: empty side
	} {
		if _, err := assertFaster(run, spec); err == nil {
			t.Errorf("assertFaster(%q) did not error", spec)
		}
	}
}
