// Command experiments reproduces the paper's tables and figures.
//
// Usage:
//
//	experiments                 # run the full suite in paper order
//	experiments -run fig6,tab3  # run selected experiments
//	experiments -list           # list experiment ids
//	experiments -requests 100   # tighter quantiles (slower)
//
// Output is a textual rendering of each table/figure; see EXPERIMENTS.md
// for the expected shapes and the paper-vs-measured discussion.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		runIDs   = flag.String("run", "", "comma-separated experiment ids (default: all)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		requests = flag.Int("requests", 0, "requests per configuration (default 60)")
		warmup   = flag.Int("warmup", 0, "warmup requests per configuration (default 6)")
		seed     = flag.Int64("seed", 0, "workload/jitter seed (default 12345)")
		qps      = flag.Float64("qps", 0, "explicit rate for fig16 (default: derived)")
		outPath  = flag.String("out", "", "write output to a file instead of stdout")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}

	r := experiments.NewRunner(experiments.Params{
		Requests: *requests, Warmup: *warmup, Seed: *seed, QPS: *qps,
	})

	start := time.Now()
	if *runIDs == "" {
		if err := experiments.RunAll(r, out); err != nil {
			fatal(err)
		}
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			if err := e.Run(r, out); err != nil {
				fatal(fmt.Errorf("%s: %w", e.ID, err))
			}
		}
	}
	fmt.Fprintf(out, "\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
