package main

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestLintSmoke drives the whole main path — load, scope, run, format —
// over a throwaway module containing one violation and one clean file.
func TestLintSmoke(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module smoke\n\ngo 1.23\n")
	write("bad.go", `package smoke

import "time"

func Poll(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-time.After(time.Second):
		}
	}
}
`)
	write("ok.go", `package smoke

func Sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
`)

	var out strings.Builder
	n, err := lint(dir, []string{"./..."}, &out)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	if n != 1 {
		t.Fatalf("want 1 finding, got %d:\n%s", n, out.String())
	}
	got := strings.TrimSpace(out.String())
	want := "bad.go:10:10: [goroutinelifecycle] time.After in a loop"
	if !strings.HasPrefix(got, want) {
		t.Fatalf("finding = %q, want prefix %q", got, want)
	}
}

// TestLintCleanModule verifies the zero-findings path returns 0 and
// writes nothing.
func TestLintCleanModule(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module clean\n\ngo 1.23\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "c.go"), []byte("package clean\n\nfunc F() int { return 1 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	n, err := lint(dir, []string{"./..."}, &out)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	if n != 0 || out.Len() != 0 {
		t.Fatalf("want clean run, got %d findings:\n%s", n, out.String())
	}
}

func TestScope(t *testing.T) {
	cases := []struct {
		analyzer string
		pkg      string
		want     bool
	}{
		{"determinism", "repro/internal/tensor", true},
		{"determinism", "repro/internal/sharding", true},
		{"determinism", "repro/internal/core", true},
		{"determinism", "repro/internal/frontend", false},
		{"determinism", "repro/internal/obs", false},
		{"nilsafeobs", "repro/internal/obs", true},
		{"nilsafeobs", "repro/internal/core", false},
		{"lockdiscipline", "repro/internal/rpc", true},
		{"goroutinelifecycle", "repro/cmd/served", true},
	}
	for _, c := range cases {
		var a *analysis.Analyzer
		for _, cand := range analyzers {
			if cand.Name == c.analyzer {
				a = cand
			}
		}
		if a == nil {
			t.Fatalf("unknown analyzer %q", c.analyzer)
		}
		if got := scope(a, c.pkg); got != c.want {
			t.Errorf("scope(%s, %s) = %v, want %v", c.analyzer, c.pkg, got, c.want)
		}
	}
}

func TestFormatFinding(t *testing.T) {
	abs, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	f := analysis.Finding{
		Analyzer: "determinism",
		Pos:      token.Position{Filename: filepath.Join(abs, "sub", "x.go"), Line: 4, Column: 2},
		Message:  "map iteration order reaches the return value",
	}
	got := formatFinding(".", f)
	want := "sub/x.go:4:2: [determinism] map iteration order reaches the return value"
	if got != want {
		t.Errorf("formatFinding = %q, want %q", got, want)
	}
	// A file outside dir keeps its absolute path.
	f.Pos.Filename = "/elsewhere/y.go"
	if got := formatFinding(".", f); !strings.HasPrefix(got, "/elsewhere/y.go:") {
		t.Errorf("out-of-dir finding = %q, want absolute path kept", got)
	}
}
