// Command repolint runs the repo's custom analyzer suite — the
// mechanized form of the correctness invariants DESIGN.md prescribes:
// determinism in the scoring/planning packages, nil-safe obs handles,
// lock discipline, and goroutine lifecycle hygiene.
//
// Usage:
//
//	go run ./cmd/repolint ./...
//
// Findings print as file:line:col: [analyzer] message, one per line,
// and the exit status is 1 when anything is found, 2 on driver error.
// Deliberate exceptions are suppressed in source with
// //lint:allow <analyzer> <reason> on (or directly above) the flagged
// line; repolint itself rejects directives with no reason, naming an
// unknown analyzer, or suppressing nothing.
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/goroutinelifecycle"
	"repro/internal/analysis/lockdiscipline"
	"repro/internal/analysis/nilsafeobs"
)

// analyzers is the full suite, in report order.
var analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	nilsafeobs.Analyzer,
	lockdiscipline.Analyzer,
	goroutinelifecycle.Analyzer,
}

// deterministicPkgs are the packages whose outputs must be
// reproducible bit-for-bit: kernels, quantization, embedding readers,
// shard planning, and the core scoring path. The determinism analyzer
// runs only here — frontends and telemetry are allowed wall clocks.
var deterministicPkgs = []string{
	"repro/internal/tensor",
	"repro/internal/quant",
	"repro/internal/embedding",
	"repro/internal/sharding",
	"repro/internal/core",
}

// obsPkgs are where nil-safe handle types live.
var obsPkgs = []string{
	"repro/internal/obs",
}

// scope decides which analyzers run on which packages.
func scope(a *analysis.Analyzer, pkgPath string) bool {
	switch a.Name {
	case determinism.Analyzer.Name:
		return underAny(pkgPath, deterministicPkgs)
	case nilsafeobs.Analyzer.Name:
		return underAny(pkgPath, obsPkgs)
	default:
		return true
	}
}

// underAny reports whether pkgPath is one of the prefixes or nested
// below one.
func underAny(pkgPath string, prefixes []string) bool {
	for _, p := range prefixes {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// lint loads patterns relative to dir, runs the suite, and writes
// findings to w. It returns the number of findings.
func lint(dir string, patterns []string, w io.Writer) (int, error) {
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		return 0, err
	}
	findings, err := analysis.Run(pkgs, analyzers, scope)
	if err != nil {
		return 0, err
	}
	for _, f := range findings {
		fmt.Fprintln(w, formatFinding(dir, f))
	}
	return len(findings), nil
}

// formatFinding renders one finding as file:line:col: [analyzer]
// message, with the file path relative to dir when possible.
func formatFinding(dir string, f analysis.Finding) string {
	name := f.Pos.Filename
	if abs, err := filepath.Abs(dir); err == nil {
		if rel, err := filepath.Rel(abs, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
	}
	return fmt.Sprintf("%s:%d:%d: [%s] %s", name, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	n, err := lint(".", patterns, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", n)
		os.Exit(1)
	}
}
